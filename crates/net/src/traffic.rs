//! Traffic models: **spatial × temporal** composition.
//!
//! A traffic source is the product of two independent choices:
//!
//! * a [`SpatialPattern`] — *where* packets go. Destinations are
//!   **computed per emission** from `(source, mesh, rng)`; nothing is
//!   materialized, so attaching a background pattern to an N-node mesh
//!   is O(N) work and the per-emission pick is allocation-free for every
//!   computed pattern.
//! * a [`TemporalSpec`] — *when* emissions happen. The spec is an
//!   immutable, `Copy` description (CBR / Poisson / on-off bursts); any
//!   mutable progress (the burst position of an on-off source) lives in
//!   a separate runtime [`PatternState`], so cloning or sharing a spec
//!   can never smuggle mid-burst state along.
//!
//! The classic NoC evaluation patterns (transpose, bit-complement,
//! bit-reverse, tornado, hotspot, nearest-neighbour, permutation) are
//! all expressible, plus [`SpatialPattern::FixedPool`] as the legacy
//! escape hatch for hand-picked destination pools.
//!
//! # Determinism
//!
//! Every pattern draws from the source's private [`SimRng`] stream with
//! a fixed draw discipline documented per variant, so a scenario's
//! destination sequence is a pure function of `(seed, attachment
//! order)`. In particular [`SpatialPattern::UniformRandom`] consumes
//! exactly one `gen_range(N-1)` per emission — the same draw sequence as
//! the historical "materialize all-but-self and `choose`" code path, so
//! recorded experiment outputs survive the redesign byte for byte.

use crate::topology::Grid;
use mango_core::{ConnectionId, RouterId};
use mango_sim::{SimDuration, SimRng, SimTime};

// ---------------------------------------------------------------------
// Temporal: when to emit
// ---------------------------------------------------------------------

/// Inter-emission timing: the immutable half of a traffic model.
///
/// `TemporalSpec` is `Copy` and carries **no runtime state**; pair it
/// with a [`PatternState`] when generating gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalSpec {
    /// Constant rate: one emission every `period`.
    Cbr {
        /// Emission period.
        period: SimDuration,
    },
    /// Poisson process with exponential gaps of the given mean.
    Poisson {
        /// Mean inter-emission gap.
        mean: SimDuration,
    },
    /// Bursts: `burst_len` emissions spaced `period`, then an `off` gap.
    OnOff {
        /// Emissions per burst.
        burst_len: u64,
        /// Spacing within a burst.
        period: SimDuration,
        /// Gap between bursts.
        off: SimDuration,
    },
}

/// Legacy name for [`TemporalSpec`], kept for one PR while call sites
/// migrate.
pub type Pattern = TemporalSpec;

/// Runtime progress of a temporal pattern (the burst position of an
/// on-off source). Fresh state starts at the beginning of a burst;
/// CBR/Poisson sources never touch it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternState {
    /// Emissions completed in the on-off cycle.
    pos: u64,
}

impl TemporalSpec {
    /// A constant-bit-rate pattern.
    pub fn cbr(period: SimDuration) -> Self {
        TemporalSpec::Cbr { period }
    }

    /// A Poisson pattern with the given mean gap.
    pub fn poisson(mean: SimDuration) -> Self {
        TemporalSpec::Poisson { mean }
    }

    /// An on-off bursty pattern.
    pub fn on_off(burst_len: u64, period: SimDuration, off: SimDuration) -> Self {
        assert!(burst_len > 0, "burst length must be positive");
        TemporalSpec::OnOff {
            burst_len,
            period,
            off,
        }
    }

    /// The gap to wait after the current emission, advancing `state`.
    pub fn next_gap(&self, state: &mut PatternState, rng: &mut SimRng) -> SimDuration {
        match self {
            TemporalSpec::Cbr { period } => *period,
            TemporalSpec::Poisson { mean } => {
                SimDuration::from_ps(rng.gen_exp(mean.as_ps() as f64).round().max(1.0) as u64)
            }
            TemporalSpec::OnOff {
                burst_len,
                period,
                off,
            } => {
                state.pos += 1;
                if state.pos.is_multiple_of(*burst_len) {
                    *off
                } else {
                    *period
                }
            }
        }
    }

    /// The long-run mean gap (for computing offered load).
    pub fn mean_gap(&self) -> SimDuration {
        match self {
            TemporalSpec::Cbr { period } => *period,
            TemporalSpec::Poisson { mean } => *mean,
            TemporalSpec::OnOff {
                burst_len,
                period,
                off,
            } => (*period * (*burst_len - 1) + *off) / *burst_len,
        }
    }
}

// ---------------------------------------------------------------------
// Spatial: where packets go
// ---------------------------------------------------------------------

/// Destination choice: the spatial half of a traffic model.
///
/// [`SpatialPattern::pick`] computes one destination per emission from
/// `(src, mesh, rng)`. Deterministic patterns (transpose, complement,
/// reverse, tornado, permutation) consume **zero** RNG draws; the draw
/// discipline of the random ones is documented on each variant and is
/// part of the reproducibility contract.
///
/// A pick returns `None` when the pattern maps the source onto itself
/// (the transpose diagonal, the centre of an odd-sized complement mesh,
/// degenerate tornado widths) or outside the mesh (bit-reverse on a
/// non-power-of-two node count, transpose on a non-square mesh): the
/// emission slot is skipped, no packet is injected.
/// [`SpatialPattern::pick`] never panics; use
/// [`SpatialPattern::validate`] to reject structurally unsuitable
/// pattern/mesh pairings up front.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialPattern {
    /// Uniformly random over every *other* node. Draws exactly one
    /// `gen_range(N-1)` per emission — bit-compatible with the
    /// historical materialized all-but-self pool.
    UniformRandom,
    /// `(x, y) → (y, x)`. Diagonal nodes self-loop (skip); requires a
    /// square mesh to stay in-grid.
    Transpose,
    /// `(x, y) → (w-1-x, h-1-y)` — the coordinate complement. The
    /// centre node of an odd×odd mesh self-loops (skip).
    BitComplement,
    /// Row-major index → its bit-reversal in `ceil(log2(N))` bits.
    /// Well-defined on power-of-two node counts; reversals landing
    /// outside a non-power-of-two mesh (and palindromic indices, which
    /// self-loop) are skipped.
    BitReverse,
    /// `x → (x + ceil(w/2) - 1) mod w` per dimension — traffic chases
    /// half-way around each axis, the adversarial case for dimension-
    /// ordered routing. Degenerate axes (width ≤ 2) keep their
    /// coordinate; a full self-loop is skipped.
    Tornado,
    /// With probability `weight`, send to a uniformly chosen entry of
    /// `targets` (the hotspot); otherwise fall back to
    /// [`SpatialPattern::UniformRandom`]. Draws one `gen_f64`, then one
    /// `gen_range` (over targets or others respectively) per emission.
    Hotspot {
        /// The hotspot nodes (repeat an entry to weight it).
        targets: Vec<RouterId>,
        /// Probability of aiming at the hotspot, clamped to [0, 1].
        weight: f64,
    },
    /// A uniformly chosen mesh neighbour (N/E/S/W order; one
    /// `gen_range(degree)` per emission). A 1×1 mesh has none (skip).
    NearestNeighbour,
    /// An explicit permutation: node at row-major index `i` sends to
    /// `perm[i]`. Fixed points self-loop (skip); a short table skips
    /// the uncovered sources.
    Permutation(Vec<RouterId>),
    /// The legacy escape hatch: a materialized destination pool, picked
    /// uniformly per emission (repeat an entry to weight it; one
    /// `gen_range(len)` per emission, the historical `choose` draw).
    /// Picks that land on the source are skipped.
    FixedPool(Vec<RouterId>),
}

/// Reverses the lowest `bits` bits of `v`.
fn reverse_bits(v: usize, bits: u32) -> usize {
    v.reverse_bits() >> (usize::BITS - bits)
}

/// The per-axis tornado offset: `ceil(n/2) - 1`.
fn tornado_offset(n: u8) -> u8 {
    n.div_ceil(2) - 1
}

impl SpatialPattern {
    /// A hotspot aimed at `targets` with the given weight.
    pub fn hotspot(targets: Vec<RouterId>, weight: f64) -> Self {
        SpatialPattern::Hotspot { targets, weight }
    }

    /// Computes the destination for one emission from `src`.
    ///
    /// Returns `None` when the pattern yields no destination for this
    /// source (self-loop or off-mesh mapping — see the variant docs);
    /// the caller skips the emission. Never panics for a source inside
    /// the mesh.
    pub fn pick(&self, src: RouterId, grid: &Grid, rng: &mut SimRng) -> Option<RouterId> {
        match self {
            SpatialPattern::UniformRandom => Self::uniform_other(src, grid, rng),
            SpatialPattern::Transpose => {
                let d = RouterId::new(src.y, src.x);
                (d != src && grid.contains(d)).then_some(d)
            }
            SpatialPattern::BitComplement => {
                let d = grid.mirror(src);
                (d != src).then_some(d)
            }
            SpatialPattern::BitReverse => {
                let n = grid.len();
                if n < 2 {
                    return None;
                }
                let i = grid.index(src);
                let bits = usize::BITS - (n - 1).leading_zeros();
                let r = reverse_bits(i, bits);
                (r != i && r < n).then(|| grid.id_at(r))
            }
            SpatialPattern::Tornado => {
                let d = RouterId::new(
                    (src.x + tornado_offset(grid.width())) % grid.width(),
                    (src.y + tornado_offset(grid.height())) % grid.height(),
                );
                (d != src).then_some(d)
            }
            SpatialPattern::Hotspot { targets, weight } => {
                if rng.gen_bool(*weight) {
                    // A hotspot node drawing itself (or an off-mesh
                    // target validate() would reject) skips the emission.
                    let d = *rng.choose(targets)?;
                    (d != src && grid.contains(d)).then_some(d)
                } else {
                    Self::uniform_other(src, grid, rng)
                }
            }
            SpatialPattern::NearestNeighbour => {
                let mut opts = [src; 4];
                let mut count = 0;
                for dir in mango_core::Direction::ALL {
                    if let Some(n) = grid.neighbor(src, dir) {
                        opts[count] = n;
                        count += 1;
                    }
                }
                (count > 0).then(|| opts[rng.gen_index(count)])
            }
            SpatialPattern::Permutation(perm) => {
                let d = *perm.get(grid.index(src))?;
                (d != src && grid.contains(d)).then_some(d)
            }
            SpatialPattern::FixedPool(pool) => {
                let d = *rng.choose(pool)?;
                (d != src && grid.contains(d)).then_some(d)
            }
        }
    }

    /// One uniform draw over all nodes except `src`: `gen_range(N-1)`,
    /// skipping past the source's own index — the exact draw sequence of
    /// the historical materialized pool.
    fn uniform_other(src: RouterId, grid: &Grid, rng: &mut SimRng) -> Option<RouterId> {
        let n = grid.len();
        if n < 2 {
            return None;
        }
        let k = rng.gen_index(n - 1);
        let k = if k >= grid.index(src) { k + 1 } else { k };
        Some(grid.id_at(k))
    }

    /// Checks the pattern is structurally suited to `grid`: transpose
    /// needs a square mesh, bit-reverse a power-of-two node count, a
    /// permutation must cover the mesh with in-mesh destinations, pools
    /// and hotspot targets must be non-empty and in-mesh, the hotspot
    /// weight finite.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated requirement. A
    /// failed validation does not make [`SpatialPattern::pick`] unsafe —
    /// unsuitable mappings degrade to skipped emissions — but a spec
    /// that fails here is almost certainly a configuration bug.
    pub fn validate(&self, grid: &Grid) -> Result<(), String> {
        let in_mesh = |ids: &[RouterId], what: &str| match ids.iter().find(|d| !grid.contains(**d))
        {
            Some(d) => Err(format!("{what} {d} outside the {grid:?}", grid = grid)),
            None => Ok(()),
        };
        match self {
            SpatialPattern::Transpose if grid.width() != grid.height() => Err(format!(
                "transpose needs a square mesh, got {}x{}",
                grid.width(),
                grid.height()
            )),
            SpatialPattern::BitReverse if !grid.len().is_power_of_two() => Err(format!(
                "bit-reverse needs a power-of-two node count, got {}",
                grid.len()
            )),
            SpatialPattern::Hotspot { targets, weight } => {
                if targets.is_empty() {
                    return Err("hotspot needs at least one target".into());
                }
                if !weight.is_finite() {
                    return Err(format!("hotspot weight {weight} is not finite"));
                }
                in_mesh(targets, "hotspot target")
            }
            SpatialPattern::Permutation(perm) => {
                if perm.len() != grid.len() {
                    return Err(format!(
                        "permutation covers {} nodes, mesh has {}",
                        perm.len(),
                        grid.len()
                    ));
                }
                in_mesh(perm, "permutation destination")
            }
            SpatialPattern::FixedPool(pool) => {
                if pool.is_empty() {
                    return Err("destination pool is empty".into());
                }
                in_mesh(pool, "pool destination")
            }
            _ => Ok(()),
        }
    }

    /// A short lowercase name for tables and CSV cells.
    pub fn name(&self) -> &'static str {
        match self {
            SpatialPattern::UniformRandom => "uniform",
            SpatialPattern::Transpose => "transpose",
            SpatialPattern::BitComplement => "bitcomp",
            SpatialPattern::BitReverse => "bitrev",
            SpatialPattern::Tornado => "tornado",
            SpatialPattern::Hotspot { .. } => "hotspot",
            SpatialPattern::NearestNeighbour => "neighbour",
            SpatialPattern::Permutation(_) => "permutation",
            SpatialPattern::FixedPool(_) => "pool",
        }
    }
}

impl std::fmt::Display for SpatialPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Pattern axis: named, parameter-free pattern points for sweeps
// ---------------------------------------------------------------------

/// A named spatial-pattern point for sweep grids and CLI flags: the
/// parameter-free subset of [`SpatialPattern`], resolved to a concrete
/// pattern per mesh by [`PatternKind::spatial`] (the canonical hotspot
/// aims half the traffic at the mesh-centre node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// [`SpatialPattern::UniformRandom`].
    Uniform,
    /// [`SpatialPattern::Transpose`].
    Transpose,
    /// [`SpatialPattern::BitComplement`].
    BitComplement,
    /// [`SpatialPattern::BitReverse`].
    BitReverse,
    /// [`SpatialPattern::Tornado`].
    Tornado,
    /// The canonical hotspot: weight 0.5 at the mesh-centre node.
    Hotspot,
    /// [`SpatialPattern::NearestNeighbour`].
    NearestNeighbour,
}

impl PatternKind {
    /// Every named pattern, in CLI listing order.
    pub const ALL: [PatternKind; 7] = [
        PatternKind::Uniform,
        PatternKind::Transpose,
        PatternKind::BitComplement,
        PatternKind::BitReverse,
        PatternKind::Tornado,
        PatternKind::Hotspot,
        PatternKind::NearestNeighbour,
    ];

    /// The CLI/CSV name.
    pub fn name(self) -> &'static str {
        match self {
            PatternKind::Uniform => "uniform",
            PatternKind::Transpose => "transpose",
            PatternKind::BitComplement => "bitcomp",
            PatternKind::BitReverse => "bitrev",
            PatternKind::Tornado => "tornado",
            PatternKind::Hotspot => "hotspot",
            PatternKind::NearestNeighbour => "neighbour",
        }
    }

    /// Parses a CLI name (the inverse of [`PatternKind::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        PatternKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Resolves the named point to a concrete pattern for a
    /// `width × height` mesh.
    pub fn spatial(self, width: u8, height: u8) -> SpatialPattern {
        match self {
            PatternKind::Uniform => SpatialPattern::UniformRandom,
            PatternKind::Transpose => SpatialPattern::Transpose,
            PatternKind::BitComplement => SpatialPattern::BitComplement,
            PatternKind::BitReverse => SpatialPattern::BitReverse,
            PatternKind::Tornado => SpatialPattern::Tornado,
            PatternKind::Hotspot => SpatialPattern::Hotspot {
                targets: vec![RouterId::new(width / 2, height / 2)],
                weight: 0.5,
            },
            PatternKind::NearestNeighbour => SpatialPattern::NearestNeighbour,
        }
    }
}

impl std::fmt::Display for PatternKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// What a source emits.
#[derive(Debug, Clone)]
pub enum SourceKind {
    /// Header-less GS flits on an open connection.
    Gs {
        /// The connection to stream on.
        conn: ConnectionId,
        /// Source router (resolved from the connection at add time).
        router: RouterId,
        /// NA TX interface (resolved from the connection).
        iface: u8,
    },
    /// BE packets whose destinations a [`SpatialPattern`] computes per
    /// emission.
    Be {
        /// Source router.
        router: RouterId,
        /// Destination model.
        spatial: SpatialPattern,
        /// Payload words per packet (flits = payload + header).
        payload_words: usize,
    },
}

/// A traffic source driving one flow.
#[derive(Debug, Clone)]
pub struct Source {
    /// What to emit.
    pub kind: SourceKind,
    /// When to emit.
    pub pattern: TemporalSpec,
    /// Runtime temporal state (burst position).
    pub state: PatternState,
    /// Flow id in the statistics registry.
    pub flow: u32,
    /// First emission time.
    pub start: SimTime,
    /// No emissions at or after this time.
    pub stop: Option<SimTime>,
    /// Maximum emissions.
    pub limit: Option<u64>,
    /// Emissions so far.
    pub emitted: u64,
    /// Private random stream.
    pub rng: SimRng,
    /// The source has finished.
    pub done: bool,
}

impl Source {
    /// True if the source may emit at `now`.
    pub fn may_emit(&self, now: SimTime) -> bool {
        !self.done
            && now >= self.start
            && self.stop.is_none_or(|s| now < s)
            && self.limit.is_none_or(|l| self.emitted < l)
    }

    /// Computes the next tick time after an emission at `now`, marking the
    /// source done if it hit a bound.
    pub fn schedule_next(&mut self, now: SimTime) -> Option<SimTime> {
        if self.limit.is_some_and(|l| self.emitted >= l) {
            self.done = true;
            return None;
        }
        let Source {
            pattern,
            state,
            rng,
            ..
        } = self;
        let gap = pattern.next_gap(state, rng);
        let next = now + gap;
        if self.stop.is_some_and(|s| next >= s) {
            self.done = true;
            return None;
        }
        Some(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    #[test]
    fn cbr_gap_is_constant() {
        let p = TemporalSpec::cbr(SimDuration::from_ns(5));
        let mut s = PatternState::default();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(p.next_gap(&mut s, &mut r), SimDuration::from_ns(5));
        }
        assert_eq!(p.mean_gap(), SimDuration::from_ns(5));
    }

    #[test]
    fn poisson_gap_mean_converges() {
        let p = TemporalSpec::poisson(SimDuration::from_ns(10));
        let mut s = PatternState::default();
        let mut r = rng();
        let n = 50_000;
        let total: u64 = (0..n).map(|_| p.next_gap(&mut s, &mut r).as_ps()).sum();
        let mean_ns = total as f64 / n as f64 / 1000.0;
        assert!((mean_ns - 10.0).abs() < 0.3, "mean {mean_ns} ns");
        assert_eq!(p.mean_gap(), SimDuration::from_ns(10));
    }

    #[test]
    fn on_off_alternates_burst_and_gap() {
        let p = TemporalSpec::on_off(3, SimDuration::from_ns(1), SimDuration::from_ns(10));
        let mut s = PatternState::default();
        let mut r = rng();
        let gaps: Vec<u64> = (0..6)
            .map(|_| p.next_gap(&mut s, &mut r).as_ps() / 1000)
            .collect();
        assert_eq!(gaps, vec![1, 1, 10, 1, 1, 10]);
        // Mean gap = (2×1 + 10)/3 = 4 ns.
        assert_eq!(p.mean_gap(), SimDuration::from_ns(4));
    }

    #[test]
    fn cloned_spec_does_not_inherit_burst_position() {
        // The spec/state conflation bug the split fixes: a spec is pure
        // description, so "cloning" it (it is Copy) mid-burst and pairing
        // it with fresh state restarts the burst.
        let p = TemporalSpec::on_off(3, SimDuration::from_ns(1), SimDuration::from_ns(10));
        let mut s = PatternState::default();
        let mut r = rng();
        p.next_gap(&mut s, &mut r);
        p.next_gap(&mut s, &mut r); // two emissions into the burst
        let copy = p;
        let mut fresh = PatternState::default();
        let gaps: Vec<u64> = (0..3)
            .map(|_| copy.next_gap(&mut fresh, &mut r).as_ps() / 1000)
            .collect();
        assert_eq!(gaps, vec![1, 1, 10], "fresh state starts a fresh burst");
        // The original state is two in: one more emission ends its burst.
        assert_eq!(p.next_gap(&mut s, &mut r), SimDuration::from_ns(10));
    }

    fn be_source(spatial: SpatialPattern) -> Source {
        Source {
            kind: SourceKind::Be {
                router: RouterId::new(0, 0),
                spatial,
                payload_words: 2,
            },
            pattern: TemporalSpec::cbr(SimDuration::from_ns(1)),
            state: PatternState::default(),
            flow: 0,
            start: SimTime::from_ns(10),
            stop: Some(SimTime::from_ns(20)),
            limit: Some(3),
            emitted: 0,
            rng: rng(),
            done: false,
        }
    }

    #[test]
    fn source_bounds_enforced() {
        let mut s = be_source(SpatialPattern::FixedPool(vec![RouterId::new(1, 0)]));
        assert!(!s.may_emit(SimTime::from_ns(5)), "before start");
        assert!(s.may_emit(SimTime::from_ns(10)));
        assert!(!s.may_emit(SimTime::from_ns(20)), "at stop");
        s.emitted = 3;
        assert!(!s.may_emit(SimTime::from_ns(15)), "limit hit");
        assert_eq!(s.schedule_next(SimTime::from_ns(15)), None);
        assert!(s.done);
    }

    #[test]
    fn schedule_next_respects_stop() {
        let mut s = be_source(SpatialPattern::FixedPool(vec![RouterId::new(1, 0)]));
        s.pattern = TemporalSpec::cbr(SimDuration::from_ns(8));
        s.start = SimTime::ZERO;
        s.stop = Some(SimTime::from_ns(10));
        s.limit = None;
        s.emitted = 1;
        assert_eq!(
            s.schedule_next(SimTime::from_ns(1)),
            Some(SimTime::from_ns(9))
        );
        assert_eq!(s.schedule_next(SimTime::from_ns(9)), None, "9+8 >= stop");
        assert!(s.done);
    }

    // -- spatial patterns --------------------------------------------

    #[test]
    fn uniform_matches_legacy_pool_draws() {
        // The RNG-compatibility contract: one gen_range(N-1) per pick,
        // mapped over the all-but-self pool in grid order.
        let grid = Grid::new(4, 4);
        let src = RouterId::new(2, 1);
        let pool: Vec<RouterId> = grid.ids().filter(|d| *d != src).collect();
        let mut a = rng();
        let mut b = rng();
        for _ in 0..1000 {
            let computed = SpatialPattern::UniformRandom
                .pick(src, &grid, &mut a)
                .unwrap();
            let legacy = *b.choose(&pool).unwrap();
            assert_eq!(computed, legacy);
        }
        assert_eq!(a, b, "identical draw counts");
    }

    #[test]
    fn deterministic_patterns_consume_no_rng() {
        let grid = Grid::new(4, 4);
        let mut r = rng();
        let before = r.clone();
        for p in [
            SpatialPattern::Transpose,
            SpatialPattern::BitComplement,
            SpatialPattern::BitReverse,
            SpatialPattern::Tornado,
            SpatialPattern::Permutation((0..grid.len()).rev().map(|i| grid.id_at(i)).collect()),
        ] {
            p.pick(RouterId::new(1, 2), &grid, &mut r);
        }
        assert_eq!(r, before, "deterministic patterns draw nothing");
    }

    #[test]
    fn transpose_swaps_coordinates_and_skips_diagonal() {
        let grid = Grid::new(4, 4);
        let mut r = rng();
        assert_eq!(
            SpatialPattern::Transpose.pick(RouterId::new(3, 1), &grid, &mut r),
            Some(RouterId::new(1, 3))
        );
        assert_eq!(
            SpatialPattern::Transpose.pick(RouterId::new(2, 2), &grid, &mut r),
            None,
            "diagonal self-loops are skipped"
        );
        assert!(SpatialPattern::Transpose.validate(&grid).is_ok());
        assert!(SpatialPattern::Transpose
            .validate(&Grid::new(4, 2))
            .is_err());
    }

    #[test]
    fn bit_complement_reflects_through_centre() {
        let grid = Grid::new(4, 4);
        let mut r = rng();
        assert_eq!(
            SpatialPattern::BitComplement.pick(RouterId::new(0, 1), &grid, &mut r),
            Some(RouterId::new(3, 2))
        );
        // Odd×odd centre self-loops.
        let odd = Grid::new(3, 3);
        assert_eq!(
            SpatialPattern::BitComplement.pick(RouterId::new(1, 1), &odd, &mut r),
            None
        );
    }

    #[test]
    fn bit_reverse_on_power_of_two_mesh() {
        let grid = Grid::new(4, 4); // 16 nodes, 4 bits
        let mut r = rng();
        // Index 1 (0001) → 8 (1000) = (0, 2).
        assert_eq!(
            SpatialPattern::BitReverse.pick(RouterId::new(1, 0), &grid, &mut r),
            Some(RouterId::new(0, 2))
        );
        // Palindromic index 0 self-loops.
        assert_eq!(
            SpatialPattern::BitReverse.pick(RouterId::new(0, 0), &grid, &mut r),
            None
        );
        assert!(SpatialPattern::BitReverse.validate(&grid).is_ok());
        assert!(SpatialPattern::BitReverse
            .validate(&Grid::new(3, 4))
            .is_err());
    }

    #[test]
    fn tornado_chases_half_way_round() {
        let grid = Grid::new(8, 8); // offset ceil(8/2)-1 = 3
        let mut r = rng();
        assert_eq!(
            SpatialPattern::Tornado.pick(RouterId::new(0, 0), &grid, &mut r),
            Some(RouterId::new(3, 3))
        );
        assert_eq!(
            SpatialPattern::Tornado.pick(RouterId::new(6, 7), &grid, &mut r),
            Some(RouterId::new(1, 2))
        );
        // Width ≤ 2 axes are degenerate; a 2×2 mesh self-loops entirely.
        let tiny = Grid::new(2, 2);
        assert_eq!(
            SpatialPattern::Tornado.pick(RouterId::new(0, 1), &tiny, &mut r),
            None
        );
    }

    #[test]
    fn hotspot_weights_targets() {
        let grid = Grid::new(4, 4);
        let target = RouterId::new(3, 0);
        let p = SpatialPattern::hotspot(vec![target], 0.75);
        let mut r = rng();
        let n = 10_000;
        let hits = (0..n)
            .filter(|_| p.pick(RouterId::new(0, 0), &grid, &mut r) == Some(target))
            .count();
        // 0.75 direct + 0.25 × 1/15 uniform fallback ≈ 0.7667.
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.7667).abs() < 0.02, "hotspot rate {rate}");
    }

    #[test]
    fn nearest_neighbour_stays_adjacent() {
        let grid = Grid::new(3, 3);
        let mut r = rng();
        for _ in 0..200 {
            let d = SpatialPattern::NearestNeighbour
                .pick(RouterId::new(0, 0), &grid, &mut r)
                .unwrap();
            assert!(
                d == RouterId::new(1, 0) || d == RouterId::new(0, 1),
                "corner neighbours only, got {d}"
            );
        }
        assert_eq!(
            SpatialPattern::NearestNeighbour.pick(RouterId::new(0, 0), &Grid::new(1, 1), &mut r),
            None
        );
    }

    #[test]
    fn permutation_maps_by_index() {
        let grid = Grid::new(2, 2);
        let perm = vec![
            RouterId::new(1, 1),
            RouterId::new(0, 1),
            RouterId::new(1, 0),
            RouterId::new(0, 0),
        ];
        let p = SpatialPattern::Permutation(perm);
        let mut r = rng();
        assert_eq!(
            p.pick(RouterId::new(0, 0), &grid, &mut r),
            Some(RouterId::new(1, 1))
        );
        assert_eq!(
            p.pick(RouterId::new(1, 1), &grid, &mut r),
            Some(RouterId::new(0, 0))
        );
        assert!(p.validate(&grid).is_ok());
        assert!(p.validate(&Grid::new(3, 3)).is_err(), "short table");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let grid = Grid::new(2, 2);
        assert!(SpatialPattern::FixedPool(vec![]).validate(&grid).is_err());
        assert!(SpatialPattern::FixedPool(vec![RouterId::new(5, 5)])
            .validate(&grid)
            .is_err());
        assert!(SpatialPattern::hotspot(vec![], 0.5)
            .validate(&grid)
            .is_err());
        assert!(SpatialPattern::hotspot(vec![RouterId::new(0, 0)], f64::NAN)
            .validate(&grid)
            .is_err());
        assert!(SpatialPattern::UniformRandom.validate(&grid).is_ok());
    }

    #[test]
    fn pattern_kind_round_trips_names() {
        for kind in PatternKind::ALL {
            assert_eq!(PatternKind::parse(kind.name()), Some(kind));
            let spatial = kind.spatial(8, 8);
            assert_eq!(spatial.name(), kind.name());
            assert!(spatial.validate(&Grid::new(8, 8)).is_ok());
        }
        assert_eq!(PatternKind::parse("nope"), None);
    }
}
