//! OCP-lite transactions over the BE network.
//!
//! MANGO's NAs expose OCP (Open Core Protocol) transactions to the IP
//! cores (Sec. 3: "providing high level communication services, i.e. OCP
//! transactions, on the basis of primitive services implemented by the
//! network"). This module implements a compact request/response layer:
//! read and write bursts are packetized onto BE packets and a memory-model
//! slave ([`OcpSlave`]) answers them. The full OCP signal set is out of
//! the paper's scope; what matters architecturally — transaction
//! packetization, tags, and request/response pairing over the network —
//! is captured.

use crate::network::{AppPacket, NaApp};
use mango_core::{Flit, RouterId};
use mango_sim::SimTime;
use std::collections::HashMap;
use std::fmt;

/// An OCP-lite transaction or its response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcpMessage {
    /// Read `burst` words from `addr`.
    ReadReq {
        /// Transaction tag (matched in the response).
        tag: u16,
        /// Requester, for the response route.
        requester: RouterId,
        /// Word-aligned address.
        addr: u32,
        /// Words to read.
        burst: u16,
    },
    /// Write `data` starting at `addr`.
    WriteReq {
        /// Transaction tag.
        tag: u16,
        /// Requester, for the response route.
        requester: RouterId,
        /// Word-aligned address.
        addr: u32,
        /// Words to write.
        data: Vec<u32>,
    },
    /// Response to a read: the data.
    ReadResp {
        /// Transaction tag.
        tag: u16,
        /// The data read.
        data: Vec<u32>,
    },
    /// Response to a write: completion.
    WriteResp {
        /// Transaction tag.
        tag: u16,
    },
}

/// Decode errors for OCP payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OcpError {
    /// Payload too short for its opcode.
    Truncated,
    /// Unknown opcode nibble.
    BadOpcode(u32),
}

impl fmt::Display for OcpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OcpError::Truncated => f.write_str("truncated OCP payload"),
            OcpError::BadOpcode(op) => write!(f, "unknown OCP opcode {op}"),
        }
    }
}

impl std::error::Error for OcpError {}

impl OcpMessage {
    /// Encodes the message as BE payload words.
    pub fn encode(&self) -> Vec<u32> {
        fn head(op: u32, tag: u16, len: u16) -> u32 {
            op << 28 | (tag as u32) << 12 | len as u32
        }
        fn router_word(r: RouterId) -> u32 {
            (r.x as u32) << 8 | r.y as u32
        }
        match self {
            OcpMessage::ReadReq {
                tag,
                requester,
                addr,
                burst,
            } => vec![head(1, *tag, *burst), router_word(*requester), *addr],
            OcpMessage::WriteReq {
                tag,
                requester,
                addr,
                data,
            } => {
                let mut w = vec![
                    head(2, *tag, data.len() as u16),
                    router_word(*requester),
                    *addr,
                ];
                w.extend_from_slice(data);
                w
            }
            OcpMessage::ReadResp { tag, data } => {
                let mut w = vec![head(3, *tag, data.len() as u16)];
                w.extend_from_slice(data);
                w
            }
            OcpMessage::WriteResp { tag } => vec![head(4, *tag, 0)],
        }
    }

    /// Decodes BE payload words.
    ///
    /// # Errors
    ///
    /// Returns [`OcpError`] for malformed payloads.
    pub fn decode(words: &[u32]) -> Result<OcpMessage, OcpError> {
        let head = *words.first().ok_or(OcpError::Truncated)?;
        let op = head >> 28;
        let tag = ((head >> 12) & 0xffff) as u16;
        let len = (head & 0xfff) as usize;
        let router = |w: u32| RouterId::new(((w >> 8) & 0xff) as u8, (w & 0xff) as u8);
        match op {
            1 => {
                if words.len() < 3 {
                    return Err(OcpError::Truncated);
                }
                Ok(OcpMessage::ReadReq {
                    tag,
                    requester: router(words[1]),
                    addr: words[2],
                    burst: len as u16,
                })
            }
            2 => {
                if words.len() < 3 + len {
                    return Err(OcpError::Truncated);
                }
                Ok(OcpMessage::WriteReq {
                    tag,
                    requester: router(words[1]),
                    addr: words[2],
                    data: words[3..3 + len].to_vec(),
                })
            }
            3 => {
                if words.len() < 1 + len {
                    return Err(OcpError::Truncated);
                }
                Ok(OcpMessage::ReadResp {
                    tag,
                    data: words[1..1 + len].to_vec(),
                })
            }
            4 => Ok(OcpMessage::WriteResp { tag }),
            op => Err(OcpError::BadOpcode(op)),
        }
    }
}

/// A memory-model OCP slave attachable to an NA.
#[derive(Debug, Default)]
pub struct OcpSlave {
    memory: HashMap<u32, u32>,
    /// Flow id to account responses under, if any.
    pub response_flow: Option<u32>,
    /// Requests served.
    pub served: u64,
}

impl OcpSlave {
    /// An empty-memory slave.
    pub fn new() -> Self {
        OcpSlave::default()
    }

    /// Reads a word (unwritten addresses read zero).
    pub fn peek(&self, addr: u32) -> u32 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }
}

impl NaApp for OcpSlave {
    fn on_packet(&mut self, _now: SimTime, packet: &[Flit]) -> Vec<AppPacket> {
        let words: Vec<u32> = packet[1..].iter().map(|f| f.data).collect();
        let Ok(msg) = OcpMessage::decode(&words) else {
            return Vec::new(); // not an OCP packet; ignore
        };
        self.served += 1;
        match msg {
            OcpMessage::ReadReq {
                tag,
                requester,
                addr,
                burst,
            } => {
                let data: Vec<u32> = (0..burst as u32).map(|i| self.peek(addr + i)).collect();
                vec![AppPacket {
                    dest: requester,
                    payload: OcpMessage::ReadResp { tag, data }.encode(),
                    flow: self.response_flow,
                }]
            }
            OcpMessage::WriteReq {
                tag,
                requester,
                addr,
                data,
            } => {
                for (i, w) in data.into_iter().enumerate() {
                    self.memory.insert(addr + i as u32, w);
                }
                vec![AppPacket {
                    dest: requester,
                    payload: OcpMessage::WriteResp { tag }.encode(),
                    flow: self.response_flow,
                }]
            }
            OcpMessage::ReadResp { .. } | OcpMessage::WriteResp { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let msgs = vec![
            OcpMessage::ReadReq {
                tag: 7,
                requester: RouterId::new(2, 3),
                addr: 0x1000,
                burst: 4,
            },
            OcpMessage::WriteReq {
                tag: 8,
                requester: RouterId::new(0, 0),
                addr: 0x2000,
                data: vec![1, 2, 3],
            },
            OcpMessage::ReadResp {
                tag: 7,
                data: vec![9, 8, 7, 6],
            },
            OcpMessage::WriteResp { tag: 8 },
        ];
        for m in msgs {
            assert_eq!(OcpMessage::decode(&m.encode()), Ok(m));
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(OcpMessage::decode(&[]), Err(OcpError::Truncated));
        assert_eq!(OcpMessage::decode(&[9 << 28]), Err(OcpError::BadOpcode(9)));
        // Write claiming 4 data words but carrying none.
        let bad = vec![2 << 28 | 4, 0, 0];
        assert_eq!(OcpMessage::decode(&bad), Err(OcpError::Truncated));
    }

    #[test]
    fn slave_serves_write_then_read() {
        let mut slave = OcpSlave::new();
        let requester = RouterId::new(1, 1);
        let write = OcpMessage::WriteReq {
            tag: 1,
            requester,
            addr: 0x40,
            data: vec![0xAA, 0xBB],
        };
        let mut packet = vec![Flit::be(0, false)]; // header stand-in
        packet.extend(write.encode().iter().map(|&w| Flit::be(w, false)));
        let resp = slave.on_packet(SimTime::ZERO, &packet);
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].dest, requester);
        assert_eq!(
            OcpMessage::decode(&resp[0].payload),
            Ok(OcpMessage::WriteResp { tag: 1 })
        );
        assert_eq!(slave.peek(0x40), 0xAA);
        assert_eq!(slave.peek(0x41), 0xBB);

        let read = OcpMessage::ReadReq {
            tag: 2,
            requester,
            addr: 0x40,
            burst: 2,
        };
        let mut packet = vec![Flit::be(0, false)];
        packet.extend(read.encode().iter().map(|&w| Flit::be(w, false)));
        let resp = slave.on_packet(SimTime::ZERO, &packet);
        assert_eq!(
            OcpMessage::decode(&resp[0].payload),
            Ok(OcpMessage::ReadResp {
                tag: 2,
                data: vec![0xAA, 0xBB]
            })
        );
        assert_eq!(slave.served, 2);
    }

    #[test]
    fn slave_ignores_non_ocp_packets() {
        let mut slave = OcpSlave::new();
        let packet = vec![Flit::be(0, false), Flit::be(0xFFFF_FFFF, true)];
        assert!(slave.on_packet(SimTime::ZERO, &packet).is_empty());
        assert_eq!(slave.served, 0);
    }
}
