//! NA-level relaying of BE packets beyond the 15-hop header capacity.
//!
//! The paper's BE source-routing header is one 32-bit rotating word: 15
//! link codes plus the final local-delivery code
//! ([`mango_core::MAX_BE_HOPS`]). On meshes up to 8×8 every XY route
//! fits; at 16×16 and beyond, cross-mesh routes do not — and neither BE
//! background traffic nor the GS *programming* packets (which are BE)
//! could reach far routers, capping every workload at the header radius.
//!
//! Rather than invent a wider header (the router hardware model stays
//! exactly the paper's), long routes are split into ≤15-link **segments
//! relayed at intermediate NAs**: the network layer addresses the packet
//! to the NA of the router 15 links along the XY route and prefixes the
//! payload with a continuation word naming a [`RelayTable`] ticket. When
//! that NA's node delivers the packet, the network recognizes the ticket,
//! rebuilds the packet for the next segment (copying per-flit
//! instrumentation metadata, so end-to-end latency accounting spans the
//! whole journey), and re-injects it — store-and-forward at the relay.
//! Each segment is XY-routed and relay queues consume unconditionally, so
//! the extension introduces no new channel-dependency cycles.
//!
//! Routes that fit a single header take the pre-relay fast path,
//! bit-identical to the original implementation.
//!
//! Acknowledgment packets (built *by routers* from a single
//! [`mango_core::AckPlan`] header word) cannot carry tickets; they hop
//! between NAs by truncation instead: the ack return header routes to the
//! farthest on-route NA within 15 links, where ack interception (which
//! already exists for final delivery) re-launches the ack toward the
//! connection source — see `Network::on_be_packet`.

use crate::route::{route_avoiding, xy_len, xy_segment_header, RouteError};
use crate::topology::Grid;
use mango_core::{build_be_packet_into, BeHeader, Direction, Flit, RouterId, MAX_BE_HOPS};

/// Magic prefix of a relay continuation word (`"RL"` in the top bytes);
/// the low 16 bits carry the ticket id. Continuation words are recognized
/// by the dedicated `relay` flit wire (set only by the segment builder,
/// so application payloads can never alias one); the magic + live-ticket
/// check is a secondary integrity guard.
const RELAY_MAGIC: u32 = 0x524C_0000;

/// Encodes a ticket as a continuation word.
#[inline]
pub fn relay_word(ticket: u16) -> u32 {
    RELAY_MAGIC | ticket as u32
}

/// Decodes a continuation word, if the magic matches.
#[inline]
pub fn parse_relay_word(word: u32) -> Option<u16> {
    (word & 0xFFFF_0000 == RELAY_MAGIC).then_some(word as u16)
}

/// The out-of-band state of one in-flight relayed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelayTicket {
    /// Final destination router.
    pub dst: RouterId,
    /// Rebuild the final segment as a config packet (`be_vc` marker,
    /// addressed to the destination's programming interface).
    pub config: bool,
}

/// Registry of live relay tickets, owned by the network.
///
/// Tickets are issued when a long route's first segment is built and
/// consumed when the relay node forwards the packet (possibly issuing a
/// fresh ticket for the next segment). The registry holds only routing
/// facts — the payload itself always travels in the packet, so relaying
/// costs the honest number of flit-hops.
/// Ticket state is a flat slab plus a free list rather than a hash map:
/// the live set is small and ids dense (they start at 0 and recycle), so
/// `take` on the relay hot path is one bounds check and one indexed
/// load, and `issue` pops the free list in O(1) with no hashing.
#[derive(Debug, Default)]
pub struct RelayTable {
    /// Ticket slots, indexed by id; `None` = released or never issued.
    live: Vec<Option<RelayTicket>>,
    /// Released ids available for reuse (LIFO keeps the id range dense).
    free: Vec<u16>,
    in_flight: usize,
}

impl RelayTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a ticket for a packet ultimately bound for `dst`.
    ///
    /// Ids are 16-bit and reused after release (LIFO), so the slab stays
    /// as small as the peak number of tickets simultaneously in flight.
    ///
    /// # Panics
    ///
    /// Panics only if all 65 536 ids are simultaneously in flight.
    pub fn issue(&mut self, dst: RouterId, config: bool) -> u16 {
        let ticket = RelayTicket { dst, config };
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                assert!(
                    self.live.len() <= u16::MAX as usize,
                    "relay ticket id space exhausted in flight"
                );
                self.live.push(None);
                (self.live.len() - 1) as u16
            }
        };
        debug_assert!(self.live[id as usize].is_none());
        self.live[id as usize] = Some(ticket);
        self.in_flight += 1;
        id
    }

    /// Consumes a live ticket.
    pub fn take(&mut self, ticket: u16) -> Option<RelayTicket> {
        let slot = self.live.get_mut(ticket as usize)?;
        let t = slot.take()?;
        self.free.push(ticket);
        self.in_flight -= 1;
        Some(t)
    }

    /// Tickets currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

/// Builds the flits of a BE packet from `src` to `dst` into `flits`
/// (cleared first), relaying through intermediate NAs when the XY route
/// exceeds the single-header capacity.
///
/// Routes within [`MAX_BE_HOPS`] links produce exactly the packet the
/// pre-relay implementation produced. Longer routes produce the first
/// ≤15-link segment with a fresh ticket's continuation word prefixed to
/// the payload; the `config` marker is deferred to the final segment
/// (intermediate segments must reach relay *NAs*, not programming
/// interfaces).
///
/// # Errors
///
/// Propagates route-computation failures.
pub fn build_segmented_packet_into(
    grid: &Grid,
    relays: &mut RelayTable,
    src: RouterId,
    dst: RouterId,
    payload: &[u32],
    config: bool,
    flits: &mut Vec<Flit>,
) -> Result<(), RouteError> {
    if !grid.all_links_up() {
        return build_avoiding_packet_into(grid, relays, src, dst, payload, config, flits);
    }
    let links = xy_len(grid, src, dst)?;
    if links <= MAX_BE_HOPS {
        let header = xy_segment_header(grid, src, dst, links);
        build_be_packet_into(header, payload, config, flits);
        return Ok(());
    }
    let header = xy_segment_header(grid, src, dst, MAX_BE_HOPS);
    let ticket = relays.issue(dst, config);
    flits.clear();
    flits.push(Flit::be(header.0, false));
    flits.push(Flit::be(relay_word(ticket), payload.is_empty()).with_relay(true));
    for (i, &word) in payload.iter().enumerate() {
        flits.push(Flit::be(word, i + 1 == payload.len()));
    }
    Ok(())
}

/// The faulted-mesh slow path of [`build_segmented_packet_into`]: routes
/// over surviving links via [`route_avoiding`] (which still prefers the
/// XY route when it survives). Detours are simple shortest paths, so any
/// ≤15-link prefix is a valid single-header segment; longer detours relay
/// exactly as long XY routes do.
fn build_avoiding_packet_into(
    grid: &Grid,
    relays: &mut RelayTable,
    src: RouterId,
    dst: RouterId,
    payload: &[u32],
    config: bool,
    flits: &mut Vec<Flit>,
) -> Result<(), RouteError> {
    let dirs = route_avoiding(grid, src, dst)?;
    let header = |segment: &[Direction]| {
        BeHeader::from_route(segment).expect("BFS paths are simple and within capacity")
    };
    if dirs.len() <= MAX_BE_HOPS {
        build_be_packet_into(header(&dirs), payload, config, flits);
        return Ok(());
    }
    let ticket = relays.issue(dst, config);
    flits.clear();
    flits.push(Flit::be(header(&dirs[..MAX_BE_HOPS]).0, false));
    flits.push(Flit::be(relay_word(ticket), payload.is_empty()).with_relay(true));
    for (i, &word) in payload.iter().enumerate() {
        flits.push(Flit::be(word, i + 1 == payload.len()));
    }
    Ok(())
}

/// [`build_segmented_packet_into`] returning a fresh `Vec` — the form the
/// connection manager uses for config packets.
///
/// # Errors
///
/// Propagates route-computation failures.
pub fn build_segmented_packet(
    grid: &Grid,
    relays: &mut RelayTable,
    src: RouterId,
    dst: RouterId,
    payload: &[u32],
    config: bool,
) -> Result<Vec<Flit>, RouteError> {
    let mut flits = Vec::new();
    build_segmented_packet_into(grid, relays, src, dst, payload, config, &mut flits)?;
    Ok(flits)
}

/// The header for an acknowledgment's next leg: routes along the XY route
/// from `src` toward `dst`, truncated to the single-header capacity. The
/// ack is intercepted wherever it delivers and re-launched until it
/// reaches `dst`.
///
/// # Errors
///
/// Propagates route-computation failures.
pub fn ack_leg_header(grid: &Grid, src: RouterId, dst: RouterId) -> Result<BeHeader, RouteError> {
    if !grid.all_links_up() {
        let dirs = route_avoiding(grid, src, dst)?;
        let leg = dirs.len().min(MAX_BE_HOPS);
        return Ok(BeHeader::from_route(&dirs[..leg]).expect("BFS paths are simple"));
    }
    let links = xy_len(grid, src, dst)?;
    Ok(xy_segment_header(grid, src, dst, links.min(MAX_BE_HOPS)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_word_round_trips() {
        for t in [0u16, 1, 0x1234, u16::MAX] {
            assert_eq!(parse_relay_word(relay_word(t)), Some(t));
        }
        assert_eq!(parse_relay_word(0xDEAD_BEEF), None);
        assert_eq!(parse_relay_word(0), None);
    }

    #[test]
    fn tickets_are_single_use() {
        let mut t = RelayTable::new();
        let dst = RouterId::new(3, 3);
        let id = t.issue(dst, true);
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.take(id), Some(RelayTicket { dst, config: true }));
        assert_eq!(t.take(id), None);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn short_routes_build_the_classic_packet() {
        let g = Grid::new(4, 4);
        let mut relays = RelayTable::new();
        let mut flits = Vec::new();
        build_segmented_packet_into(
            &g,
            &mut relays,
            RouterId::new(0, 0),
            RouterId::new(3, 3),
            &[7, 8],
            false,
            &mut flits,
        )
        .unwrap();
        let classic = mango_core::build_be_packet(
            crate::route::xy_header(&g, RouterId::new(0, 0), RouterId::new(3, 3)).unwrap(),
            &[7, 8],
            false,
        );
        assert_eq!(flits, classic, "fast path is bit-identical");
        assert_eq!(relays.in_flight(), 0, "no ticket issued");
    }

    #[test]
    fn long_routes_get_a_continuation_word() {
        let g = Grid::new(32, 1);
        let mut relays = RelayTable::new();
        let mut flits = Vec::new();
        build_segmented_packet_into(
            &g,
            &mut relays,
            RouterId::new(0, 0),
            RouterId::new(31, 0),
            &[1, 2, 3],
            true,
            &mut flits,
        )
        .unwrap();
        assert_eq!(relays.in_flight(), 1);
        assert_eq!(flits.len(), 5, "header + continuation + 3 payload");
        let ticket = parse_relay_word(flits[1].data).expect("continuation word");
        assert_eq!(
            relays.take(ticket),
            Some(RelayTicket {
                dst: RouterId::new(31, 0),
                config: true
            })
        );
        assert!(
            flits.iter().all(|f| !f.be_vc),
            "config marker deferred to the final segment"
        );
        assert!(flits.last().unwrap().eop);
        assert!(flits[..4].iter().all(|f| !f.eop));
    }

    #[test]
    fn faulted_mesh_builds_detour_packets() {
        let mut g = Grid::new(4, 2);
        g.fail_link(RouterId::new(1, 0), mango_core::Direction::East);
        let mut relays = RelayTable::new();
        let mut flits = Vec::new();
        build_segmented_packet_into(
            &g,
            &mut relays,
            RouterId::new(0, 0),
            RouterId::new(3, 0),
            &[9],
            false,
            &mut flits,
        )
        .unwrap();
        assert_eq!(relays.in_flight(), 0, "5-link detour fits one header");
        // Walk the header: it must end in a local delivery at (3,0)
        // without crossing the failed link.
        let mut header = BeHeader(flits[0].data);
        let mut cur = RouterId::new(0, 0);
        let mut from = None;
        loop {
            let (dest, next) = header.route(from);
            match dest {
                mango_core::BeDest::Net(dir) => {
                    assert!(g.link_up(cur, dir), "crossed dead link {cur}->{dir}");
                    from = Some(dir.opposite());
                    cur = g.neighbor(cur, dir).unwrap();
                    header = next;
                }
                mango_core::BeDest::Local => break,
            }
        }
        assert_eq!(cur, RouterId::new(3, 0));

        // A partitioned pair surfaces the typed error.
        let mut cut = Grid::new(2, 1);
        cut.fail_link(RouterId::new(0, 0), mango_core::Direction::East);
        let err = build_segmented_packet_into(
            &cut,
            &mut relays,
            RouterId::new(0, 0),
            RouterId::new(1, 0),
            &[],
            false,
            &mut flits,
        );
        assert!(matches!(err, Err(RouteError::Unreachable { .. })));
    }

    #[test]
    fn ack_leg_truncates_to_header_capacity() {
        let g = Grid::new(32, 1);
        // 31 links: the first leg covers 15 and delivers at (15,0).
        let h = ack_leg_header(&g, RouterId::new(31, 0), RouterId::new(0, 0)).unwrap();
        let mut header = h;
        let mut from = None;
        for _ in 0..MAX_BE_HOPS {
            let (dest, next) = header.route(from);
            assert_eq!(dest, mango_core::BeDest::Net(mango_core::Direction::West));
            header = next;
            from = Some(mango_core::Direction::East);
        }
        let (dest, _) = header.route(from);
        assert_eq!(dest, mango_core::BeDest::Local, "leg ends in a delivery");
        // A short remainder fits directly.
        let h = ack_leg_header(&g, RouterId::new(5, 0), RouterId::new(0, 0)).unwrap();
        let (dest, _) = h.route(None);
        assert_eq!(dest, mango_core::BeDest::Net(mango_core::Direction::West));
    }
}
