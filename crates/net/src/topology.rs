//! Topologies: routers in a grid connected by point-to-point links
//! (Fig. 1: "The routers are connected by links in a grid-type structure,
//! either homogeneous or heterogeneous").
//!
//! The topology layer is a two-stage API:
//!
//! * [`TopologySpec`] — a parsable, nameable description of the shape
//!   (like [`crate::traffic::PatternKind`] for traffic): a plain
//!   [`TopologySpec::Mesh`], a [`TopologySpec::Torus`] with wraparound
//!   links per axis, or a [`TopologySpec::ChipletMesh`] — a mesh of
//!   chiplet sub-meshes whose die-to-die boundary links carry extra
//!   pipeline delay.
//! * [`Grid`] — the compiled runtime topology every consumer queries
//!   through its accessor surface ([`Grid::neighbor`], [`Grid::link_up`],
//!   [`Grid::link_extra`], [`Grid::axis_legs`]): routing, relay,
//!   admission and fault injection never do raw coordinate arithmetic of
//!   their own.
//!
//! Long links can be pipelined (Sec. 3: "To keep speed up, long links can
//! be implemented as pipelines"); each pipeline stage adds forward latency
//! without reducing throughput. A heterogeneous grid assigns extra stages
//! per link — the mechanism a chiplet spec compiles its D2D boundary
//! delay into.

use mango_core::{Direction, RouterId};
use mango_sim::SimDuration;
use std::collections::HashSet;
use std::fmt;

/// The canonical die-to-die boundary delay a named chiplet spec compiles
/// to: two extra pipeline stages' worth of wire (2 ns). Custom values are
/// available programmatically via [`TopologySpec::ChipletMesh`].
pub fn d2d_extra_default() -> SimDuration {
    SimDuration::from_ns(2)
}

/// A parsable, nameable topology description, compiled to a runtime
/// [`Grid`] by [`Grid::from_spec`].
///
/// Names round-trip through [`TopologySpec::name`] /
/// [`TopologySpec::parse`]: `mesh8x8`, `torus4x4`, `chiplet2x2x4x4`
/// (chips_x × chips_y chips of node_w × node_h routers, canonical D2D
/// delay). A chiplet spec with a non-canonical delay names itself with an
/// explicit `@<ps>ps` suffix, which `parse` also accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// A plain `width × height` mesh — the paper's Fig. 1 structure.
    Mesh {
        /// Mesh width.
        width: u8,
        /// Mesh height.
        height: u8,
    },
    /// A `width × height` torus: each axis wraps around, so routing
    /// takes the shorter way round per axis (≤ ⌈k/2⌉ hops on a k-long
    /// axis). Both dimensions must be ≥ 2.
    Torus {
        /// Torus width.
        width: u8,
        /// Torus height.
        height: u8,
    },
    /// A mesh of chiplet sub-meshes: `chips_x × chips_y` dies, each a
    /// `node_w × node_h` router mesh, stitched into one global
    /// `(chips_x·node_w) × (chips_y·node_h)` grid whose die-crossing
    /// links carry `d2d_extra` forward delay in both directions.
    ChipletMesh {
        /// Chips along x.
        chips_x: u8,
        /// Chips along y.
        chips_y: u8,
        /// Routers per chip along x.
        node_w: u8,
        /// Routers per chip along y.
        node_h: u8,
        /// Extra forward delay on each directed die-crossing link.
        d2d_extra: SimDuration,
    },
}

impl TopologySpec {
    /// A mesh spec.
    pub fn mesh(width: u8, height: u8) -> Self {
        TopologySpec::Mesh { width, height }
    }

    /// A torus spec.
    pub fn torus(width: u8, height: u8) -> Self {
        TopologySpec::Torus { width, height }
    }

    /// A chiplet mesh-of-meshes with the canonical D2D boundary delay.
    pub fn chiplet(chips_x: u8, chips_y: u8, node_w: u8, node_h: u8) -> Self {
        TopologySpec::ChipletMesh {
            chips_x,
            chips_y,
            node_w,
            node_h,
            d2d_extra: d2d_extra_default(),
        }
    }

    /// Total grid dimensions `(width, height)`.
    pub fn dims(&self) -> (u8, u8) {
        match *self {
            TopologySpec::Mesh { width, height } | TopologySpec::Torus { width, height } => {
                (width, height)
            }
            TopologySpec::ChipletMesh {
                chips_x,
                chips_y,
                node_w,
                node_h,
                ..
            } => (chips_x * node_w, chips_y * node_h),
        }
    }

    /// The CLI/CSV name (`mesh8x8`, `torus4x4`, `chiplet2x2x4x4`).
    pub fn name(&self) -> String {
        match *self {
            TopologySpec::Mesh { width, height } => format!("mesh{width}x{height}"),
            TopologySpec::Torus { width, height } => format!("torus{width}x{height}"),
            TopologySpec::ChipletMesh {
                chips_x,
                chips_y,
                node_w,
                node_h,
                d2d_extra,
            } => {
                let base = format!("chiplet{chips_x}x{chips_y}x{node_w}x{node_h}");
                if d2d_extra == d2d_extra_default() {
                    base
                } else {
                    format!("{base}@{}ps", d2d_extra.as_ps())
                }
            }
        }
    }

    /// Parses a topology name (the inverse of [`TopologySpec::name`]).
    pub fn parse(s: &str) -> Option<Self> {
        fn dims2(s: &str) -> Option<(u8, u8)> {
            let (w, h) = s.split_once('x')?;
            Some((w.parse().ok()?, h.parse().ok()?))
        }
        if let Some(rest) = s.strip_prefix("mesh") {
            let (w, h) = dims2(rest)?;
            return Some(TopologySpec::Mesh {
                width: w,
                height: h,
            });
        }
        if let Some(rest) = s.strip_prefix("torus") {
            let (w, h) = dims2(rest)?;
            return Some(TopologySpec::Torus {
                width: w,
                height: h,
            });
        }
        if let Some(rest) = s.strip_prefix("chiplet") {
            let (rest, extra) = match rest.split_once('@') {
                Some((dims, ps)) => {
                    let ps: u64 = ps.strip_suffix("ps")?.parse().ok()?;
                    (dims, SimDuration::from_ps(ps))
                }
                None => (rest, d2d_extra_default()),
            };
            let mut it = rest.split('x');
            let mut next = || -> Option<u8> { it.next()?.parse().ok() };
            let (cx, cy, nw, nh) = (next()?, next()?, next()?, next()?);
            if it.next().is_some() {
                return None;
            }
            return Some(TopologySpec::ChipletMesh {
                chips_x: cx,
                chips_y: cy,
                node_w: nw,
                node_h: nh,
                d2d_extra: extra,
            });
        }
        None
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The compiled runtime topology: a rectangular grid of routers, with
/// optional per-axis wraparound (torus) and per-link extra pipeline
/// delay (heterogeneous links, D2D boundaries).
#[derive(Debug, Clone)]
pub struct Grid {
    width: u8,
    height: u8,
    /// The x axis wraps (torus).
    wrap_x: bool,
    /// The y axis wraps (torus).
    wrap_y: bool,
    /// Chiplet tile dimensions `(node_w, node_h)` when this grid is a
    /// mesh-of-meshes; `None` for monolithic topologies.
    chip: Option<(u8, u8)>,
    /// Extra forward delay applied to links without an override.
    default_extra: SimDuration,
    /// Per-link extra forward delay, indexed `router_index × 4 + dir`;
    /// `None` until an override is set (the homogeneous fast path — one
    /// branch, no hashing, once per flit hop).
    extra: Option<Box<[SimDuration]>>,
    /// Directed links currently failed (fault injection); routing, relay
    /// and admission all consult this mask. Empty on a healthy mesh.
    down_links: HashSet<(RouterId, Direction)>,
    /// The spec this grid was compiled from (naming, CSV columns).
    spec: TopologySpec,
}

impl Grid {
    /// A homogeneous `width × height` mesh with no extra link delay.
    ///
    /// Thin shim over [`Grid::from_spec`] with a
    /// [`TopologySpec::Mesh`], kept so mesh-only call sites stay
    /// source-compatible; new code should build a [`TopologySpec`] and
    /// compile it.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u8, height: u8) -> Self {
        Grid::from_spec(&TopologySpec::Mesh { width, height })
    }

    /// Compiles a [`TopologySpec`] into a runtime grid.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero, a torus axis is shorter than 2, or
    /// a chiplet spec overflows the `u8` coordinate space.
    pub fn from_spec(spec: &TopologySpec) -> Self {
        let (width, height) = match *spec {
            TopologySpec::Mesh { width, height } => (width, height),
            TopologySpec::Torus { width, height } => {
                assert!(
                    width >= 2 && height >= 2,
                    "torus dimensions must be at least 2, got {width}x{height}"
                );
                (width, height)
            }
            TopologySpec::ChipletMesh {
                chips_x,
                chips_y,
                node_w,
                node_h,
                ..
            } => {
                assert!(
                    chips_x > 0 && chips_y > 0 && node_w > 0 && node_h > 0,
                    "chiplet dimensions must be positive"
                );
                let w = chips_x.checked_mul(node_w);
                let h = chips_y.checked_mul(node_h);
                let (Some(w), Some(h)) = (w, h) else {
                    panic!("chiplet grid {chips_x}x{chips_y} of {node_w}x{node_h} overflows u8");
                };
                (w, h)
            }
        };
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        let mut grid = Grid {
            width,
            height,
            wrap_x: matches!(spec, TopologySpec::Torus { .. }),
            wrap_y: matches!(spec, TopologySpec::Torus { .. }),
            chip: match *spec {
                TopologySpec::ChipletMesh { node_w, node_h, .. } => Some((node_w, node_h)),
                _ => None,
            },
            default_extra: SimDuration::ZERO,
            extra: None,
            down_links: HashSet::new(),
            spec: *spec,
        };
        if let TopologySpec::ChipletMesh { d2d_extra, .. } = *spec {
            // Compile the D2D delay into per-link extras, both directions
            // of every die-crossing channel.
            for (from, dir) in grid.boundary_links() {
                grid.set_link_extra(from, dir, d2d_extra);
            }
        }
        grid
    }

    /// The spec this grid was compiled from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// Grid width.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// True for a degenerate 0-router grid (never constructed; for
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The mesh region a router belongs to — the unit a sharded (PDES)
    /// dispatcher would hand one worker. On chiplet topologies a region
    /// is a die; on flat meshes and tori it is an 8×8 tile (a single
    /// region for grids that fit inside one tile). Region indices are
    /// dense, row-major: `ry * regions_x + rx`.
    #[inline]
    pub fn region_of(&self, id: RouterId) -> u32 {
        let (tile_w, tile_h) = self.chip.unwrap_or((8, 8));
        let rx = id.x as u32 / tile_w as u32;
        let ry = id.y as u32 / tile_h as u32;
        ry * self.regions_x() + rx
    }

    /// Number of regions across the grid width (see [`Grid::region_of`]).
    #[inline]
    fn regions_x(&self) -> u32 {
        let (tile_w, _) = self.chip.unwrap_or((8, 8));
        (self.width as u32).div_ceil(tile_w as u32)
    }

    /// Total number of regions (see [`Grid::region_of`]).
    pub fn regions(&self) -> u32 {
        let (_, tile_h) = self.chip.unwrap_or((8, 8));
        self.regions_x() * (self.height as u32).div_ceil(tile_h as u32)
    }

    /// Sets the default extra forward delay on all links (homogeneous
    /// pipelining).
    ///
    /// # Panics
    ///
    /// Panics if a per-link override has already been set: the default
    /// seeds the per-link table, so it must be configured first.
    pub fn set_default_link_extra(&mut self, extra: SimDuration) {
        assert!(
            self.extra.is_none(),
            "set the default link extra before per-link overrides"
        );
        self.default_extra = extra;
    }

    /// Sets extra forward delay on one directed link (heterogeneous
    /// pipelining). Both directions of a physical channel are configured
    /// separately.
    ///
    /// # Panics
    ///
    /// Panics if the link leaves the grid.
    pub fn set_link_extra(&mut self, from: RouterId, dir: Direction, extra: SimDuration) {
        assert!(
            self.neighbor(from, dir).is_some(),
            "link {from}->{dir} leaves the grid"
        );
        let slots = self.len() * 4;
        let default = self.default_extra;
        let table = self
            .extra
            .get_or_insert_with(|| vec![default; slots].into_boxed_slice());
        table[(from.y as usize * self.width as usize + from.x as usize) * 4 + dir.index()] = extra;
    }

    /// The extra forward delay on a directed link. Runs once per flit
    /// hop: one branch on homogeneous grids, one flat-array load on
    /// heterogeneous ones.
    #[inline]
    pub fn link_extra(&self, from: RouterId, dir: Direction) -> SimDuration {
        match &self.extra {
            None => self.default_extra,
            Some(table) => {
                table[(from.y as usize * self.width as usize + from.x as usize) * 4 + dir.index()]
            }
        }
    }

    /// True if the directed link leaving `from` toward `dir` is healthy.
    ///
    /// Links that leave the grid are reported as down (there is no link
    /// there at all), so `link_up` can double as a "may I route this way"
    /// predicate in BFS loops.
    #[inline]
    pub fn link_up(&self, from: RouterId, dir: Direction) -> bool {
        // Healthy meshes (the common case) never touch the set; this
        // lookup sits on routing and admission paths.
        if self.down_links.is_empty() {
            return self.neighbor(from, dir).is_some();
        }
        self.neighbor(from, dir).is_some() && !self.down_links.contains(&(from, dir))
    }

    /// True if no link has been failed (the healthy-mesh fast path).
    #[inline]
    pub fn all_links_up(&self) -> bool {
        self.down_links.is_empty()
    }

    /// Marks one directed link as failed. Both directions of a physical
    /// channel fail separately; call twice for a full channel cut.
    ///
    /// # Panics
    ///
    /// Panics if the link leaves the grid.
    pub fn fail_link(&mut self, from: RouterId, dir: Direction) {
        assert!(
            self.neighbor(from, dir).is_some(),
            "link {from}->{dir} leaves the grid"
        );
        self.down_links.insert((from, dir));
    }

    /// Restores a previously failed directed link.
    pub fn restore_link(&mut self, from: RouterId, dir: Direction) {
        self.down_links.remove(&(from, dir));
    }

    /// Fails every directed link touching `id` (router fail-stop): the
    /// four outgoing links and the four incoming ones.
    pub fn fail_router(&mut self, id: RouterId) {
        for dir in Direction::ALL {
            if let Some(n) = self.neighbor(id, dir) {
                self.down_links.insert((id, dir));
                self.down_links.insert((n, dir.opposite()));
            }
        }
    }

    /// Number of directed links currently failed.
    pub fn failed_links(&self) -> usize {
        self.down_links.len()
    }

    /// True if `id` lies within the grid.
    pub fn contains(&self, id: RouterId) -> bool {
        id.x < self.width && id.y < self.height
    }

    /// The neighbor of `id` in direction `dir`, if it exists. On a torus
    /// axis, stepping off the edge wraps to the far side.
    pub fn neighbor(&self, id: RouterId, dir: Direction) -> Option<RouterId> {
        debug_assert!(self.contains(id), "router {id} outside grid");
        if let Some(n) = id.step(dir).filter(|n| self.contains(*n)) {
            return Some(n);
        }
        match dir {
            Direction::East if self.wrap_x => Some(RouterId::new(0, id.y)),
            Direction::West if self.wrap_x => Some(RouterId::new(self.width - 1, id.y)),
            Direction::South if self.wrap_y => Some(RouterId::new(id.x, 0)),
            Direction::North if self.wrap_y => Some(RouterId::new(id.x, self.height - 1)),
            _ => None,
        }
    }

    /// The canonical dimension-ordered route from `src` to `dst` as two
    /// axis legs `[(x_dir, x_hops), (y_dir, y_hops)]`, x first. On a
    /// mesh this is the XY route; on a torus each axis takes the shorter
    /// way round (≤ ⌈k/2⌉ hops), tie-breaking East/South at exactly half
    /// way. A zero-length leg keeps a placeholder direction.
    pub fn axis_legs(&self, src: RouterId, dst: RouterId) -> [(Direction, u8); 2] {
        let x = Self::axis_leg(
            src.x,
            dst.x,
            self.width,
            self.wrap_x,
            Direction::East,
            Direction::West,
        );
        let y = Self::axis_leg(
            src.y,
            dst.y,
            self.height,
            self.wrap_y,
            Direction::South,
            Direction::North,
        );
        [x, y]
    }

    fn axis_leg(
        from: u8,
        to: u8,
        len: u8,
        wrap: bool,
        fwd: Direction,
        back: Direction,
    ) -> (Direction, u8) {
        if wrap {
            // Distance the forward way round; the tie at exactly len/2
            // breaks toward `fwd` (East/South) so every consumer --
            // router, relay recomputation, admission -- picks the same
            // deterministic leg.
            let f = (to as u16 + len as u16 - from as u16) % len as u16;
            let b = len as u16 - f;
            if f == 0 {
                (fwd, 0)
            } else if f <= b {
                (fwd, f as u8)
            } else {
                (back, b as u8)
            }
        } else if to >= from {
            (fwd, to - from)
        } else {
            (back, from - to)
        }
    }

    /// The point reflection of `id` through the grid centre — the
    /// canonical "far corner" pairing used to place GS endpoints without
    /// raw coordinate arithmetic at call sites.
    pub fn mirror(&self, id: RouterId) -> RouterId {
        RouterId::new(self.width - 1 - id.x, self.height - 1 - id.y)
    }

    /// True if the directed link `from → dir` crosses a chiplet (die)
    /// boundary. Always false on monolithic topologies.
    pub fn is_boundary_link(&self, from: RouterId, dir: Direction) -> bool {
        let Some((cw, ch)) = self.chip else {
            return false;
        };
        match self.neighbor(from, dir) {
            Some(to) => from.x / cw != to.x / cw || from.y / ch != to.y / ch,
            None => false,
        }
    }

    /// Every directed die-to-die boundary link, in deterministic
    /// (row-major router, then N/E/S/W) order. Empty on monolithic
    /// topologies.
    pub fn boundary_links(&self) -> Vec<(RouterId, Direction)> {
        let mut links = Vec::new();
        if self.chip.is_none() {
            return links;
        }
        for id in self.ids() {
            for dir in Direction::ALL {
                if self.is_boundary_link(id, dir) {
                    links.push((id, dir));
                }
            }
        }
        links
    }

    /// Dense index of a router (row-major).
    pub fn index(&self, id: RouterId) -> usize {
        assert!(self.contains(id), "router {id} outside grid");
        id.y as usize * self.width as usize + id.x as usize
    }

    /// Router id for a dense index.
    pub fn id_at(&self, index: usize) -> RouterId {
        assert!(index < self.len(), "index {index} out of range");
        RouterId::new(
            (index % self.width as usize) as u8,
            (index / self.width as usize) as u8,
        )
    }

    /// Iterates over all router ids, row-major.
    pub fn ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.len()).map(|i| self.id_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrips() {
        let g = Grid::new(4, 3);
        assert_eq!(g.len(), 12);
        for i in 0..g.len() {
            assert_eq!(g.index(g.id_at(i)), i);
        }
        assert_eq!(g.ids().count(), 12);
    }

    #[test]
    fn neighbors_respect_edges() {
        let g = Grid::new(3, 3);
        let corner = RouterId::new(0, 0);
        assert_eq!(g.neighbor(corner, Direction::North), None);
        assert_eq!(g.neighbor(corner, Direction::West), None);
        assert_eq!(
            g.neighbor(corner, Direction::East),
            Some(RouterId::new(1, 0))
        );
        assert_eq!(
            g.neighbor(corner, Direction::South),
            Some(RouterId::new(0, 1))
        );
        let far = RouterId::new(2, 2);
        assert_eq!(g.neighbor(far, Direction::East), None);
        assert_eq!(g.neighbor(far, Direction::South), None);
    }

    #[test]
    fn link_extra_defaults_and_overrides() {
        let mut g = Grid::new(2, 2);
        let a = RouterId::new(0, 0);
        assert_eq!(g.link_extra(a, Direction::East), SimDuration::ZERO);
        g.set_default_link_extra(SimDuration::from_ps(500));
        assert_eq!(g.link_extra(a, Direction::East), SimDuration::from_ps(500));
        g.set_link_extra(a, Direction::East, SimDuration::from_ns(2));
        assert_eq!(g.link_extra(a, Direction::East), SimDuration::from_ns(2));
        // The reverse direction keeps the default.
        assert_eq!(
            g.link_extra(RouterId::new(1, 0), Direction::West),
            SimDuration::from_ps(500)
        );
    }

    #[test]
    #[should_panic(expected = "before per-link overrides")]
    fn default_extra_after_override_rejected() {
        let mut g = Grid::new(2, 2);
        g.set_link_extra(
            RouterId::new(0, 0),
            Direction::East,
            SimDuration::from_ns(1),
        );
        g.set_default_link_extra(SimDuration::from_ps(500));
    }

    #[test]
    #[should_panic(expected = "leaves the grid")]
    fn off_grid_link_extra_rejected() {
        let mut g = Grid::new(2, 2);
        g.set_link_extra(RouterId::new(0, 0), Direction::North, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = Grid::new(0, 3);
    }

    #[test]
    fn link_mask_defaults_to_all_up() {
        let g = Grid::new(3, 3);
        assert!(g.all_links_up());
        assert_eq!(g.failed_links(), 0);
        assert!(g.link_up(RouterId::new(0, 0), Direction::East));
        // Off-grid "links" read as down even on a healthy mesh.
        assert!(!g.link_up(RouterId::new(0, 0), Direction::North));
    }

    #[test]
    fn fail_and_restore_one_direction() {
        let mut g = Grid::new(3, 3);
        let a = RouterId::new(0, 0);
        g.fail_link(a, Direction::East);
        assert!(!g.link_up(a, Direction::East));
        // The reverse direction is a separate link and stays up.
        assert!(g.link_up(RouterId::new(1, 0), Direction::West));
        assert!(!g.all_links_up());
        g.restore_link(a, Direction::East);
        assert!(g.link_up(a, Direction::East));
        assert!(g.all_links_up());
    }

    #[test]
    fn fail_router_cuts_all_adjacent_links() {
        let mut g = Grid::new(3, 3);
        let mid = RouterId::new(1, 1);
        g.fail_router(mid);
        for dir in Direction::ALL {
            assert!(!g.link_up(mid, dir), "outgoing {dir}");
            let n = g.neighbor(mid, dir).unwrap();
            assert!(!g.link_up(n, dir.opposite()), "incoming from {n}");
        }
        // 4 outgoing + 4 incoming directed links.
        assert_eq!(g.failed_links(), 8);
        // Links not touching the dead router are unaffected.
        assert!(g.link_up(RouterId::new(0, 0), Direction::East));
    }

    #[test]
    #[should_panic(expected = "leaves the grid")]
    fn off_grid_fail_link_rejected() {
        let mut g = Grid::new(2, 2);
        g.fail_link(RouterId::new(0, 0), Direction::West);
    }

    // -- topology specs -----------------------------------------------

    #[test]
    fn spec_names_round_trip() {
        for spec in [
            TopologySpec::mesh(8, 8),
            TopologySpec::mesh(4, 1),
            TopologySpec::torus(4, 4),
            TopologySpec::torus(8, 2),
            TopologySpec::chiplet(2, 2, 4, 4),
            TopologySpec::ChipletMesh {
                chips_x: 3,
                chips_y: 1,
                node_w: 2,
                node_h: 2,
                d2d_extra: SimDuration::from_ps(750),
            },
        ] {
            assert_eq!(TopologySpec::parse(&spec.name()), Some(spec), "{spec}");
        }
        assert_eq!(TopologySpec::parse("mesh8x8").unwrap().dims(), (8, 8));
        assert_eq!(
            TopologySpec::parse("chiplet2x2x4x4").unwrap().dims(),
            (8, 8)
        );
        assert_eq!(TopologySpec::parse("ring9"), None);
        assert_eq!(TopologySpec::parse("mesh8"), None);
        assert_eq!(TopologySpec::parse("chiplet2x2x4"), None);
    }

    #[test]
    fn torus_wraps_both_axes() {
        let g = Grid::from_spec(&TopologySpec::torus(4, 3));
        assert_eq!(
            g.neighbor(RouterId::new(3, 1), Direction::East),
            Some(RouterId::new(0, 1))
        );
        assert_eq!(
            g.neighbor(RouterId::new(0, 1), Direction::West),
            Some(RouterId::new(3, 1))
        );
        assert_eq!(
            g.neighbor(RouterId::new(2, 2), Direction::South),
            Some(RouterId::new(2, 0))
        );
        assert_eq!(
            g.neighbor(RouterId::new(2, 0), Direction::North),
            Some(RouterId::new(2, 2))
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_torus_rejected() {
        let _ = Grid::from_spec(&TopologySpec::torus(1, 4));
    }

    #[test]
    fn torus_axis_legs_take_the_short_way() {
        let g = Grid::from_spec(&TopologySpec::torus(8, 8));
        // 0 → 6 east is 6 hops, west is 2: go west.
        let [x, y] = g.axis_legs(RouterId::new(0, 0), RouterId::new(6, 0));
        assert_eq!(x, (Direction::West, 2));
        assert_eq!(y.1, 0);
        // Exactly half way (4 of 8) ties toward East/South.
        let [x, y] = g.axis_legs(RouterId::new(1, 1), RouterId::new(5, 5));
        assert_eq!(x, (Direction::East, 4));
        assert_eq!(y, (Direction::South, 4));
        // The mesh keeps plain signed distances.
        let m = Grid::new(8, 8);
        let [x, _] = m.axis_legs(RouterId::new(0, 0), RouterId::new(6, 0));
        assert_eq!(x, (Direction::East, 6));
    }

    #[test]
    fn chiplet_boundary_links_carry_extra() {
        let g = Grid::from_spec(&TopologySpec::chiplet(2, 2, 4, 4));
        assert_eq!(g.width(), 8);
        assert_eq!(g.height(), 8);
        let d2d = d2d_extra_default();
        // x-boundary between columns 3 and 4.
        let a = RouterId::new(3, 1);
        assert!(g.is_boundary_link(a, Direction::East));
        assert_eq!(g.link_extra(a, Direction::East), d2d);
        assert_eq!(g.link_extra(RouterId::new(4, 1), Direction::West), d2d);
        // y-boundary between rows 3 and 4.
        assert_eq!(g.link_extra(RouterId::new(6, 3), Direction::South), d2d);
        // In-die links stay fast.
        assert!(!g.is_boundary_link(a, Direction::West));
        assert_eq!(g.link_extra(a, Direction::West), SimDuration::ZERO);
        assert_eq!(
            g.link_extra(RouterId::new(0, 0), Direction::East),
            SimDuration::ZERO
        );
        // 2×2 chips of 4×4: each internal seam crosses 8 rows/columns,
        // 2 seams × 8 channels × 2 directions = 32 directed D2D links.
        assert_eq!(g.boundary_links().len(), 32);
    }

    #[test]
    fn mirror_reflects_through_centre() {
        let g = Grid::new(8, 4);
        assert_eq!(g.mirror(RouterId::new(0, 0)), RouterId::new(7, 3));
        assert_eq!(g.mirror(RouterId::new(2, 1)), RouterId::new(5, 2));
    }

    #[test]
    fn mesh_has_no_boundaries() {
        let g = Grid::new(4, 4);
        assert!(g.boundary_links().is_empty());
        assert!(!g.is_boundary_link(RouterId::new(1, 1), Direction::East));
    }
}
