//! Mesh topologies: routers in a grid connected by point-to-point links
//! (Fig. 1: "The routers are connected by links in a grid-type structure,
//! either homogeneous or heterogeneous").
//!
//! Long links can be pipelined (Sec. 3: "To keep speed up, long links can
//! be implemented as pipelines"); each pipeline stage adds forward latency
//! without reducing throughput. A heterogeneous grid assigns extra stages
//! per link.

use mango_core::{Direction, RouterId};
use mango_sim::SimDuration;
use std::collections::{HashMap, HashSet};

/// A rectangular mesh of routers.
#[derive(Debug, Clone)]
pub struct Grid {
    width: u8,
    height: u8,
    /// Extra forward delay on specific links (heterogeneous pipelining);
    /// key is `(from, direction)`.
    link_extra: HashMap<(RouterId, Direction), SimDuration>,
    /// Extra forward delay applied to every link.
    default_extra: SimDuration,
    /// Directed links currently failed (fault injection); routing, relay
    /// and admission all consult this mask. Empty on a healthy mesh.
    down_links: HashSet<(RouterId, Direction)>,
}

impl Grid {
    /// A homogeneous `width × height` mesh with no extra link delay.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u8, height: u8) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid {
            width,
            height,
            link_extra: HashMap::new(),
            default_extra: SimDuration::ZERO,
            down_links: HashSet::new(),
        }
    }

    /// Grid width.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u8 {
        self.height
    }

    /// Number of routers.
    pub fn len(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// True for a degenerate 0-router grid (never constructed; for
    /// `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sets the default extra forward delay on all links (homogeneous
    /// pipelining).
    pub fn set_default_link_extra(&mut self, extra: SimDuration) {
        self.default_extra = extra;
    }

    /// Sets extra forward delay on one directed link (heterogeneous
    /// pipelining). Both directions of a physical channel are configured
    /// separately.
    ///
    /// # Panics
    ///
    /// Panics if the link leaves the grid.
    pub fn set_link_extra(&mut self, from: RouterId, dir: Direction, extra: SimDuration) {
        assert!(
            self.neighbor(from, dir).is_some(),
            "link {from}->{dir} leaves the grid"
        );
        self.link_extra.insert((from, dir), extra);
    }

    /// The extra forward delay on a directed link.
    #[inline]
    pub fn link_extra(&self, from: RouterId, dir: Direction) -> SimDuration {
        // Homogeneous grids (the common case) never touch the map; this
        // lookup runs once per flit hop.
        if self.link_extra.is_empty() {
            return self.default_extra;
        }
        self.link_extra
            .get(&(from, dir))
            .copied()
            .unwrap_or(self.default_extra)
    }

    /// True if the directed link leaving `from` toward `dir` is healthy.
    ///
    /// Links that leave the grid are reported as down (there is no link
    /// there at all), so `link_up` can double as a "may I route this way"
    /// predicate in BFS loops.
    #[inline]
    pub fn link_up(&self, from: RouterId, dir: Direction) -> bool {
        // Healthy meshes (the common case) never touch the set; this
        // lookup sits on routing and admission paths.
        if self.down_links.is_empty() {
            return self.neighbor(from, dir).is_some();
        }
        self.neighbor(from, dir).is_some() && !self.down_links.contains(&(from, dir))
    }

    /// True if no link has been failed (the healthy-mesh fast path).
    #[inline]
    pub fn all_links_up(&self) -> bool {
        self.down_links.is_empty()
    }

    /// Marks one directed link as failed. Both directions of a physical
    /// channel fail separately; call twice for a full channel cut.
    ///
    /// # Panics
    ///
    /// Panics if the link leaves the grid.
    pub fn fail_link(&mut self, from: RouterId, dir: Direction) {
        assert!(
            self.neighbor(from, dir).is_some(),
            "link {from}->{dir} leaves the grid"
        );
        self.down_links.insert((from, dir));
    }

    /// Restores a previously failed directed link.
    pub fn restore_link(&mut self, from: RouterId, dir: Direction) {
        self.down_links.remove(&(from, dir));
    }

    /// Fails every directed link touching `id` (router fail-stop): the
    /// four outgoing links and the four incoming ones.
    pub fn fail_router(&mut self, id: RouterId) {
        for dir in Direction::ALL {
            if let Some(n) = self.neighbor(id, dir) {
                self.down_links.insert((id, dir));
                self.down_links.insert((n, dir.opposite()));
            }
        }
    }

    /// Number of directed links currently failed.
    pub fn failed_links(&self) -> usize {
        self.down_links.len()
    }

    /// True if `id` lies within the grid.
    pub fn contains(&self, id: RouterId) -> bool {
        id.x < self.width && id.y < self.height
    }

    /// The neighbor of `id` in direction `dir`, if it exists.
    pub fn neighbor(&self, id: RouterId, dir: Direction) -> Option<RouterId> {
        debug_assert!(self.contains(id), "router {id} outside grid");
        id.step(dir).filter(|n| self.contains(*n))
    }

    /// Dense index of a router (row-major).
    pub fn index(&self, id: RouterId) -> usize {
        assert!(self.contains(id), "router {id} outside grid");
        id.y as usize * self.width as usize + id.x as usize
    }

    /// Router id for a dense index.
    pub fn id_at(&self, index: usize) -> RouterId {
        assert!(index < self.len(), "index {index} out of range");
        RouterId::new(
            (index % self.width as usize) as u8,
            (index / self.width as usize) as u8,
        )
    }

    /// Iterates over all router ids, row-major.
    pub fn ids(&self) -> impl Iterator<Item = RouterId> + '_ {
        (0..self.len()).map(|i| self.id_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrips() {
        let g = Grid::new(4, 3);
        assert_eq!(g.len(), 12);
        for i in 0..g.len() {
            assert_eq!(g.index(g.id_at(i)), i);
        }
        assert_eq!(g.ids().count(), 12);
    }

    #[test]
    fn neighbors_respect_edges() {
        let g = Grid::new(3, 3);
        let corner = RouterId::new(0, 0);
        assert_eq!(g.neighbor(corner, Direction::North), None);
        assert_eq!(g.neighbor(corner, Direction::West), None);
        assert_eq!(
            g.neighbor(corner, Direction::East),
            Some(RouterId::new(1, 0))
        );
        assert_eq!(
            g.neighbor(corner, Direction::South),
            Some(RouterId::new(0, 1))
        );
        let far = RouterId::new(2, 2);
        assert_eq!(g.neighbor(far, Direction::East), None);
        assert_eq!(g.neighbor(far, Direction::South), None);
    }

    #[test]
    fn link_extra_defaults_and_overrides() {
        let mut g = Grid::new(2, 2);
        let a = RouterId::new(0, 0);
        assert_eq!(g.link_extra(a, Direction::East), SimDuration::ZERO);
        g.set_default_link_extra(SimDuration::from_ps(500));
        assert_eq!(g.link_extra(a, Direction::East), SimDuration::from_ps(500));
        g.set_link_extra(a, Direction::East, SimDuration::from_ns(2));
        assert_eq!(g.link_extra(a, Direction::East), SimDuration::from_ns(2));
        // The reverse direction keeps the default.
        assert_eq!(
            g.link_extra(RouterId::new(1, 0), Direction::West),
            SimDuration::from_ps(500)
        );
    }

    #[test]
    #[should_panic(expected = "leaves the grid")]
    fn off_grid_link_extra_rejected() {
        let mut g = Grid::new(2, 2);
        g.set_link_extra(RouterId::new(0, 0), Direction::North, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = Grid::new(0, 3);
    }

    #[test]
    fn link_mask_defaults_to_all_up() {
        let g = Grid::new(3, 3);
        assert!(g.all_links_up());
        assert_eq!(g.failed_links(), 0);
        assert!(g.link_up(RouterId::new(0, 0), Direction::East));
        // Off-grid "links" read as down even on a healthy mesh.
        assert!(!g.link_up(RouterId::new(0, 0), Direction::North));
    }

    #[test]
    fn fail_and_restore_one_direction() {
        let mut g = Grid::new(3, 3);
        let a = RouterId::new(0, 0);
        g.fail_link(a, Direction::East);
        assert!(!g.link_up(a, Direction::East));
        // The reverse direction is a separate link and stays up.
        assert!(g.link_up(RouterId::new(1, 0), Direction::West));
        assert!(!g.all_links_up());
        g.restore_link(a, Direction::East);
        assert!(g.link_up(a, Direction::East));
        assert!(g.all_links_up());
    }

    #[test]
    fn fail_router_cuts_all_adjacent_links() {
        let mut g = Grid::new(3, 3);
        let mid = RouterId::new(1, 1);
        g.fail_router(mid);
        for dir in Direction::ALL {
            assert!(!g.link_up(mid, dir), "outgoing {dir}");
            let n = g.neighbor(mid, dir).unwrap();
            assert!(!g.link_up(n, dir.opposite()), "incoming from {n}");
        }
        // 4 outgoing + 4 incoming directed links.
        assert_eq!(g.failed_links(), 8);
        // Links not touching the dead router are unaffected.
        assert!(g.link_up(RouterId::new(0, 0), Direction::East));
    }

    #[test]
    #[should_panic(expected = "leaves the grid")]
    fn off_grid_fail_link_rejected() {
        let mut g = Grid::new(2, 2);
        g.fail_link(RouterId::new(0, 0), Direction::West);
    }
}
