//! Run-time observability for network simulations.
//!
//! The network carries a [`TelemetrySink`]: `Off` (the default) costs one
//! enum-discriminant branch per hook and collects nothing; `Active` holds
//! a [`TelemetryState`] — a typed metrics registry, an epoch time-series
//! sampled by a self-rescheduling kernel event, and a Chrome-trace
//! (Perfetto-loadable) span log of flit journeys and recovery lifecycle
//! events.
//!
//! Everything recorded is a pure function of simulated state and time, so
//! telemetry output is byte-identical at any worker-thread count (threads
//! partition *jobs*, never one kernel).

use mango_sim::SimDuration;
use mango_telemetry::{ChromeTrace, EpochSeries, HistId, MetricsRegistry, TelemetryReport};

/// Chrome-trace process id for flit-journey events (`tid` = flow id).
pub const TRACE_PID_FLITS: u32 = 1;
/// Chrome-trace process id for connection/recovery lifecycle events
/// (`tid` = connection id).
pub const TRACE_PID_RECOVERY: u32 = 2;

/// Configuration for an activated telemetry sink.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Epoch sampler cadence — one [`crate::network::NetEvent::TelemetrySample`]
    /// snapshot row per interval.
    pub sample_every: SimDuration,
    /// Record per-flit journey spans and per-hop instants in the Chrome
    /// trace (recovery lifecycle spans are always recorded while active).
    pub trace_flits: bool,
    /// Deterministic cap on recorded flit trace events; once reached,
    /// further flit events are counted but not stored.
    pub max_trace_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: SimDuration::from_ns(1000),
            trace_flits: true,
            max_trace_events: 100_000,
        }
    }
}

/// Live telemetry collection state (see the module docs).
#[derive(Debug)]
pub struct TelemetryState {
    /// Configuration it was enabled with.
    pub cfg: TelemetryConfig,
    /// Typed counters/gauges/histograms, finalized into the report.
    pub metrics: MetricsRegistry,
    /// The epoch sampler's time series.
    pub epochs: EpochSeries,
    /// Flit-journey and recovery spans.
    pub trace: ChromeTrace,
    /// Flit trace events recorded so far (capped by
    /// `cfg.max_trace_events`).
    pub flit_events: usize,
    /// Flit trace events dropped after the cap was hit.
    pub flit_events_dropped: u64,
    /// Whether a [`crate::network::NetEvent::TelemetrySample`] is
    /// currently scheduled. The sampler lets the queue drain rather than
    /// keep an idle simulation alive, so the harness re-arms it (via
    /// [`crate::network::Network::telemetry_sampler_rearm`]) whenever a
    /// run segment starts.
    pub sampler_armed: bool,
    /// Which [`crate::network::Network::enable_telemetry`] activation
    /// this state belongs to; sampler events tagged with a different
    /// generation are stale and ignored.
    pub generation: u32,
    /// End-to-end GS flit latency histogram (nanoseconds).
    pub hist_gs_latency: HistId,
    /// End-to-end BE packet latency histogram (nanoseconds).
    pub hist_be_latency: HistId,
}

/// Epoch time-series columns, in order (see the sampler arm of
/// [`crate::network::Network`]'s event handler for the semantics).
pub const EPOCH_COLUMNS: &[&str] = &[
    "t_us",
    "injected",
    "delivered",
    "in_flight",
    "gs_buffered",
    "be_buffered",
    "na_gs_queued",
    "na_be_backlog",
    "link_util_mean",
    "link_util_max",
    "gs_dropped",
    "be_dropped",
];

impl TelemetryState {
    /// Fresh state for `cfg`, with the fixed epoch columns and named
    /// trace tracks in place.
    pub fn new(cfg: TelemetryConfig, generation: u32) -> Box<Self> {
        let mut trace = ChromeTrace::default();
        trace.name_track(TRACE_PID_FLITS, None, "flit journeys");
        trace.name_track(TRACE_PID_RECOVERY, None, "connection recovery");
        let mut metrics = MetricsRegistry::default();
        let hist_gs_latency = metrics.histogram("gs.latency_ns");
        let hist_be_latency = metrics.histogram("be.latency_ns");
        Box::new(TelemetryState {
            cfg,
            metrics,
            epochs: EpochSeries::new(EPOCH_COLUMNS.iter().map(|c| c.to_string()).collect()),
            trace,
            flit_events: 0,
            flit_events_dropped: 0,
            sampler_armed: false,
            generation,
            hist_gs_latency,
            hist_be_latency,
        })
    }

    /// Reserves one flit trace event against the cap; returns `false`
    /// (and counts the drop) once the cap is reached.
    pub fn reserve_flit_event(&mut self) -> bool {
        if self.flit_events < self.cfg.max_trace_events {
            self.flit_events += 1;
            true
        } else {
            self.flit_events_dropped += 1;
            false
        }
    }

    /// Finalizes into a [`TelemetryReport`].
    pub fn into_report(self) -> TelemetryReport {
        TelemetryReport {
            metrics: self.metrics,
            epochs: self.epochs,
            trace: self.trace,
        }
    }
}

/// The network's telemetry attachment point: `Off` is the zero-overhead
/// default.
#[derive(Debug, Default)]
pub enum TelemetrySink {
    /// Telemetry disabled; every hook is a single branch.
    #[default]
    Off,
    /// Telemetry active.
    Active(Box<TelemetryState>),
}

impl TelemetrySink {
    /// True when collecting.
    pub fn is_active(&self) -> bool {
        matches!(self, TelemetrySink::Active(_))
    }

    /// The live state, if active.
    pub fn state_mut(&mut self) -> Option<&mut TelemetryState> {
        match self {
            TelemetrySink::Off => None,
            TelemetrySink::Active(s) => Some(s),
        }
    }

    /// Shared view of the live state, if active.
    pub fn state(&self) -> Option<&TelemetryState> {
        match self {
            TelemetrySink::Off => None,
            TelemetrySink::Active(s) => Some(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_defaults_off() {
        let sink = TelemetrySink::default();
        assert!(!sink.is_active());
        assert!(sink.state().is_none());
    }

    #[test]
    fn flit_event_cap_is_enforced() {
        let mut st = TelemetryState::new(
            TelemetryConfig {
                max_trace_events: 2,
                ..Default::default()
            },
            1,
        );
        assert!(st.reserve_flit_event());
        assert!(st.reserve_flit_event());
        assert!(!st.reserve_flit_event());
        assert_eq!(st.flit_events, 2);
        assert_eq!(st.flit_events_dropped, 1);
    }

    #[test]
    fn epoch_columns_match_state() {
        let st = TelemetryState::new(TelemetryConfig::default(), 1);
        assert_eq!(st.epochs.columns().len(), EPOCH_COLUMNS.len());
    }
}
