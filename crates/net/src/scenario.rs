//! Declarative experiment scenarios.
//!
//! A [`ScenarioSpec`] is a complete, self-contained description of one
//! simulation run: mesh geometry, GS connections with their sources, and
//! a list of composable [`TrafficSpec`] traffic models (spatial ×
//! temporal — see [`crate::traffic`]), plus warmup and measurement
//! phases. [`ScenarioSpec::run`] builds a fresh [`NocSim`], executes the
//! scenario and returns typed [`ScenarioMetrics`] — so a scenario can be
//! shipped to a worker thread and run with **zero shared state**, which
//! is what makes parameter sweeps embarrassingly parallel.
//!
//! Specs compose fluently:
//!
//! ```
//! use mango_net::{ScenarioSpec, SpatialPattern, TemporalSpec, TrafficSpec};
//! use mango_core::RouterId;
//! use mango_sim::SimDuration;
//!
//! let spec = ScenarioSpec::mesh(4, 4, 7)
//!     .warmup(SimDuration::from_us(5))
//!     .measure_for(SimDuration::from_us(20))
//!     .gs(RouterId::new(0, 0), RouterId::new(3, 3), TemporalSpec::cbr(SimDuration::from_ns(12)))
//!     .traffic(TrafficSpec::new(
//!         SpatialPattern::Transpose,
//!         TemporalSpec::poisson(SimDuration::from_ns(300)),
//!     ));
//! let metrics = spec.run();
//! assert!(metrics.gs(0).delivered > 0);
//! ```
//!
//! # Determinism contract
//!
//! Two runs of an identical `ScenarioSpec` produce bit-identical
//! [`ScenarioMetrics`], on any thread, regardless of what other scenarios
//! run concurrently. This holds because the construction sequence is
//! fixed and documented (below), every traffic source draws from an RNG
//! stream forked deterministically from the scenario seed in attachment
//! order, and the simulation kernel itself is sequential and
//! deterministic.
//!
//! Construction order (the RNG stream a source receives is its position
//! in this sequence):
//!
//! 1. build the mesh from `(width, height, router_cfg, seed)`;
//! 2. open every GS connection in `gs` order, then settle programming
//!    traffic (skipped when there are no connections);
//! 3. attach [`Phase::Setup`] sources: GS flows in `gs` order, legacy
//!    explicit BE flows in `be` order, then [`TrafficSpec`]s in `traffic`
//!    order (a distributed spec attaches one source per node in grid-id
//!    order), then the legacy `background` shim;
//! 4. run for `warmup` (skipped when zero);
//! 5. begin the measurement window;
//! 6. attach [`Phase::Measure`] sources in the same within-phase order;
//! 7. run to the `measure` bound (fixed span or quiescence).
//!
//! This sequence reproduces, step for step, what the original repro
//! binaries did imperatively — their outputs are bit-identical to a
//! hand-rolled [`NocSim`] driven the same way. In particular a
//! [`SpatialPattern::UniformRandom`] traffic spec draws the **exact RNG
//! sequence** of the historical materialized-pool background, so
//! recorded goldens survive the traffic-model redesign byte for byte
//! (pinned by this module's tests).

use crate::conn::ConnState;
use crate::na::NaConfig;
use crate::network::Network;
use crate::sim::{EmitWindow, NocSim};
use crate::topology::{Grid, TopologySpec};
use crate::traffic::{SpatialPattern, TemporalSpec};
use mango_core::{RouterConfig, RouterId};
use mango_sim::{RunOutcome, SimDuration};

/// When a source is attached: before warmup or at measurement start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Attached before the warmup run (traffic present during warmup).
    Setup,
    /// Attached immediately after the measurement window opens.
    Measure,
}

/// How the measurement run terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureBound {
    /// Run for a fixed span of simulated time.
    For(SimDuration),
    /// Run until the event queue drains (bounded sources required).
    ToQuiescence,
}

/// A GS connection with an attached CBR/Poisson flit source.
#[derive(Debug, Clone)]
pub struct GsFlowSpec {
    /// Connection source router.
    pub src: RouterId,
    /// Connection destination router.
    pub dst: RouterId,
    /// Emission pattern.
    pub pattern: TemporalSpec,
    /// Flow name in the statistics registry.
    pub name: String,
    /// Emission bounds.
    pub window: EmitWindow,
    /// Attachment phase.
    pub phase: Phase,
}

/// One composable traffic model: a [`SpatialPattern`] (where packets go)
/// × a [`TemporalSpec`] (when they are emitted).
///
/// With `src: None` the spec is **distributed**: one source per mesh
/// node (in grid-id order), each named `{name_prefix}{node}` — the shape
/// of background interference. With `src: Some(node)` it is a single
/// point source named `name_prefix` verbatim — the shape of an explicit
/// probe flow.
#[derive(Debug, Clone)]
pub struct TrafficSpec {
    /// `None` = one source per node; `Some` = a single point source.
    pub src: Option<RouterId>,
    /// Destination model (computed per emission).
    pub spatial: SpatialPattern,
    /// Emission timing.
    pub temporal: TemporalSpec,
    /// Payload words per packet (flits = payload + header).
    pub payload_words: usize,
    /// Attachment phase.
    pub phase: Phase,
    /// Emission bounds.
    pub window: EmitWindow,
    /// Flow-name prefix; distributed specs append the node id
    /// (e.g. `"bg-"` → `"bg-(1,2)"`), point sources use it verbatim.
    pub name_prefix: String,
}

impl TrafficSpec {
    /// A distributed `spatial × temporal` traffic model with the
    /// conventional defaults: 4 payload words, [`Phase::Setup`],
    /// unbounded emission window, `"bg-"` name prefix.
    pub fn new(spatial: SpatialPattern, temporal: TemporalSpec) -> Self {
        TrafficSpec {
            src: None,
            spatial,
            temporal,
            payload_words: 4,
            phase: Phase::Setup,
            window: EmitWindow::default(),
            name_prefix: "bg-".into(),
        }
    }

    /// Uniform-random background at the given mean Poisson gap — the
    /// classic interference workload, one call.
    pub fn uniform_poisson(mean_gap: SimDuration) -> Self {
        TrafficSpec::new(
            SpatialPattern::UniformRandom,
            TemporalSpec::poisson(mean_gap),
        )
    }

    /// Turns the spec into a single point source at `src` (named by the
    /// prefix verbatim).
    pub fn from_node(mut self, src: RouterId) -> Self {
        self.src = Some(src);
        self
    }

    /// Sets the payload words per packet.
    pub fn payload(mut self, words: usize) -> Self {
        self.payload_words = words;
        self
    }

    /// Sets the attachment phase.
    pub fn phase(mut self, phase: Phase) -> Self {
        self.phase = phase;
        self
    }

    /// Sets the emission window.
    pub fn window(mut self, window: EmitWindow) -> Self {
        self.window = window;
        self
    }

    /// Sets the flow-name prefix.
    pub fn named(mut self, prefix: impl Into<String>) -> Self {
        self.name_prefix = prefix.into();
        self
    }
}

/// An explicit BE packet flow — the legacy pre-[`TrafficSpec`] shape,
/// kept for one PR while call sites migrate
/// (`TrafficSpec::new(SpatialPattern::FixedPool(dests), pattern)
/// .from_node(src)` is the replacement).
#[derive(Debug, Clone)]
pub struct BeFlowSpec {
    /// Source router.
    pub src: RouterId,
    /// Destination pool (uniform pick; repeat to weight).
    pub dests: Vec<RouterId>,
    /// Payload words per packet.
    pub payload_words: usize,
    /// Emission pattern.
    pub pattern: TemporalSpec,
    /// Flow name in the statistics registry.
    pub name: String,
    /// Emission bounds.
    pub window: EmitWindow,
    /// Attachment phase.
    pub phase: Phase,
}

/// Uniform-random all-to-all BE background traffic — the legacy
/// pre-[`TrafficSpec`] shape, kept for one PR
/// (`TrafficSpec::new(SpatialPattern::UniformRandom, pattern)` is the
/// replacement and draws the identical RNG sequence).
#[derive(Debug, Clone)]
pub struct BeBackgroundSpec {
    /// Per-node emission pattern.
    pub pattern: TemporalSpec,
    /// Payload words per packet.
    pub payload_words: usize,
    /// Flow-name prefix; the node id is appended (e.g. `"bg-"` →
    /// `"bg-(1,2)"`).
    pub name_prefix: String,
    /// Attachment phase.
    pub phase: Phase,
}

/// A complete, runnable experiment description.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Mesh width.
    pub width: u8,
    /// Mesh height.
    pub height: u8,
    /// Topology override: `None` compiles a plain `width × height` mesh
    /// (the historical behavior); `Some` compiles the spec (torus,
    /// chiplet mesh-of-meshes) and `width`/`height` mirror its dims.
    pub topology: Option<TopologySpec>,
    /// Router configuration for every node.
    pub router_cfg: RouterConfig,
    /// Simulation seed (every source stream forks from it).
    pub seed: u64,
    /// Warmup span before the measurement window (zero = none).
    pub warmup: SimDuration,
    /// Measurement termination.
    pub measure: MeasureBound,
    /// GS connections with sources.
    pub gs: Vec<GsFlowSpec>,
    /// Composable traffic models, attached in order.
    pub traffic: Vec<TrafficSpec>,
    /// Legacy explicit BE flows.
    #[deprecated(note = "use `traffic` with a `FixedPool` point source")]
    pub be: Vec<BeFlowSpec>,
    /// Legacy uniform-random background.
    #[deprecated(note = "use `traffic` with `SpatialPattern::UniformRandom`")]
    pub background: Option<BeBackgroundSpec>,
    /// Turn on region-blocked event scheduling for the measurement run
    /// (scan-order grouping + per-region dispatch census; results are
    /// byte-identical either way — see [`NocSim::enable_region_blocking`]).
    pub region_block: bool,
}

impl ScenarioSpec {
    /// A scenario skeleton on a `width × height` paper mesh: no traffic,
    /// no warmup, fixed measurement span.
    #[allow(deprecated)]
    pub fn mesh(width: u8, height: u8, seed: u64) -> Self {
        ScenarioSpec {
            width,
            height,
            topology: None,
            router_cfg: RouterConfig::paper(),
            seed,
            warmup: SimDuration::ZERO,
            measure: MeasureBound::For(SimDuration::from_us(100)),
            gs: Vec::new(),
            traffic: Vec::new(),
            be: Vec::new(),
            background: None,
            region_block: false,
        }
    }

    /// A scenario skeleton on an arbitrary topology (torus, chiplet
    /// mesh-of-meshes): [`ScenarioSpec::mesh`] generalized through
    /// [`TopologySpec`]. `width`/`height` mirror the compiled dims so
    /// existing coordinate-based traffic specs keep working.
    pub fn on_topology(spec: TopologySpec, seed: u64) -> Self {
        let (width, height) = spec.dims();
        ScenarioSpec {
            topology: Some(spec),
            ..Self::mesh(width, height, seed)
        }
    }

    /// The topology this scenario compiles: the explicit spec, or the
    /// default `width × height` mesh.
    pub fn topology_spec(&self) -> TopologySpec {
        self.topology.unwrap_or(TopologySpec::Mesh {
            width: self.width,
            height: self.height,
        })
    }

    // --------------------------------------------------------------
    // Fluent builder surface
    // --------------------------------------------------------------

    /// Turns on region-blocked event scheduling for the measurement run.
    pub fn region_block(mut self) -> Self {
        self.region_block = true;
        self
    }

    /// Sets the warmup span.
    pub fn warmup(mut self, span: SimDuration) -> Self {
        self.warmup = span;
        self
    }

    /// Measures for a fixed span.
    pub fn measure_for(mut self, span: SimDuration) -> Self {
        self.measure = MeasureBound::For(span);
        self
    }

    /// Measures until the event queue drains (bounded sources required).
    pub fn measure_to_quiescence(mut self) -> Self {
        self.measure = MeasureBound::ToQuiescence;
        self
    }

    /// Adds a GS connection `src → dst` with a source following
    /// `temporal`, auto-named `gs-N`, attached at measurement start.
    /// Use [`ScenarioSpec::gs_flow`] for full control.
    pub fn gs(mut self, src: RouterId, dst: RouterId, temporal: TemporalSpec) -> Self {
        let name = format!("gs-{}", self.gs.len());
        self.gs.push(GsFlowSpec {
            src,
            dst,
            pattern: temporal,
            name,
            window: EmitWindow::default(),
            phase: Phase::Measure,
        });
        self
    }

    /// Adds a fully specified GS flow.
    pub fn gs_flow(mut self, flow: GsFlowSpec) -> Self {
        self.gs.push(flow);
        self
    }

    /// Adds a composable traffic model.
    pub fn traffic(mut self, spec: TrafficSpec) -> Self {
        self.traffic.push(spec);
        self
    }

    /// Builds the simulation, executes every phase and collects metrics.
    ///
    /// # Panics
    ///
    /// Panics if a GS connection cannot be opened or programming traffic
    /// fails to settle — a sweep point with an infeasible configuration
    /// is a spec bug, not a measurement.
    pub fn run(&self) -> ScenarioMetrics {
        let mut prepared = self.prepare();
        prepared.start_measurement();
        let outcome = prepared.run_to_bound();
        prepared.finish(outcome)
    }

    /// Executes construction steps 1–3 (mesh, static connections, `Setup`
    /// sources) and hands back the mid-flight scenario, so a driver can
    /// interleave its own activity — the QoS churn engine opens and
    /// closes further connections between run segments — while keeping
    /// the documented construction order (and therefore bit-identical
    /// results for an untouched scenario).
    ///
    /// # Panics
    ///
    /// As [`ScenarioSpec::run`].
    pub fn prepare(&self) -> PreparedScenario {
        let mut sim = NocSim::new(
            Network::new(
                Grid::from_spec(&self.topology_spec()),
                self.router_cfg.clone(),
                NaConfig::paper(),
            ),
            self.seed,
        );

        // Open connections up front; sources attach later by phase.
        let conns: Vec<_> = self
            .gs
            .iter()
            .map(|g| {
                sim.open_connection(g.src, g.dst).unwrap_or_else(|e| {
                    panic!("scenario GS connection {}->{} failed: {e}", g.src, g.dst)
                })
            })
            .collect();
        if !conns.is_empty() {
            sim.wait_connections_settled()
                .expect("scenario programming traffic settles");
            for (g, c) in self.gs.iter().zip(&conns) {
                assert_eq!(
                    sim.connection_state(*c),
                    Some(ConnState::Open),
                    "scenario connection {}->{} did not open",
                    g.src,
                    g.dst
                );
            }
        }

        let mut prepared = PreparedScenario {
            spec: self.clone(),
            sim,
            conns,
            flows: Vec::new(),
            gs_flows: Vec::new(),
            be_flows: Vec::new(),
            background_flows: Vec::new(),
        };
        prepared.attach_phase(Phase::Setup);
        prepared
    }
}

/// A scenario mid-flight: simulation built, static connections open,
/// [`Phase::Setup`] sources attached. Produced by
/// [`ScenarioSpec::prepare`]; the canonical sequence is
/// [`PreparedScenario::start_measurement`], then either
/// [`PreparedScenario::run_to_bound`] or caller-driven run segments via
/// [`PreparedScenario::sim_mut`], then [`PreparedScenario::finish`].
#[derive(Debug)]
pub struct PreparedScenario {
    spec: ScenarioSpec,
    sim: NocSim,
    conns: Vec<mango_core::ConnectionId>,
    flows: Vec<(u32, FlowKind)>,
    gs_flows: Vec<usize>,
    be_flows: Vec<usize>,
    background_flows: Vec<usize>,
}

impl PreparedScenario {
    /// The spec this scenario was prepared from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The running simulation.
    pub fn sim(&self) -> &NocSim {
        &self.sim
    }

    /// Mutable simulation access for caller-driven run segments.
    pub fn sim_mut(&mut self) -> &mut NocSim {
        &mut self.sim
    }

    /// Ids of the static GS connections, in spec order.
    pub fn connections(&self) -> &[mango_core::ConnectionId] {
        &self.conns
    }

    /// Construction steps 4–6: run warmup, open the measurement window
    /// and attach the [`Phase::Measure`] sources.
    pub fn start_measurement(&mut self) {
        if !self.spec.warmup.is_zero() {
            self.sim.run_for(self.spec.warmup);
        }
        self.sim.begin_measurement();
        self.attach_phase(Phase::Measure);
        // After every source is registered, so the source->region
        // snapshot is complete.
        if self.spec.region_block {
            self.sim.enable_region_blocking();
        }
    }

    /// Runs the measurement phase to the spec's [`MeasureBound`].
    pub fn run_to_bound(&mut self) -> RunOutcome {
        match self.spec.measure {
            MeasureBound::For(span) => self.sim.run_for(span),
            MeasureBound::ToQuiescence => self.sim.run_to_quiescence(),
        }
    }

    /// Registers a flow the caller attached itself (e.g. a churn-engine
    /// GS stream) so it appears in the final metrics; returns its index
    /// in [`ScenarioMetrics::flows`].
    pub fn track_flow(&mut self, flow: u32, kind: FlowKind) -> usize {
        let idx = self.flows.len();
        self.flows.push((flow, kind));
        match kind {
            FlowKind::Gs => self.gs_flows.push(idx),
            FlowKind::Be => self.be_flows.push(idx),
        }
        idx
    }

    /// Collects the final metrics.
    pub fn finish(self, outcome: RunOutcome) -> ScenarioMetrics {
        // Every flit ever injected must be delivered, fault-dropped, or
        // still buffered/in flight — checked in debug builds only.
        self.sim.network().debug_check_conservation();
        let window = self.sim.measured_window();
        let flow_metrics = self
            .flows
            .iter()
            .map(|&(id, kind)| {
                let s = self.sim.flow(id);
                FlowMetric {
                    name: s.name.clone(),
                    kind,
                    injected: s.injected,
                    delivered: s.delivered,
                    sequence_errors: s.sequence_errors,
                    latency_count: s.latency.count(),
                    throughput_m: s.throughput_mfps(window),
                    mean_ns: s.latency.mean().map(|d| d.as_ns_f64()),
                    p50_ns: s.latency.quantile(0.5).map(|d| d.as_ns_f64()),
                    p95_ns: s.latency.quantile(0.95).map(|d| d.as_ns_f64()),
                    p99_ns: s.latency.quantile(0.99).map(|d| d.as_ns_f64()),
                    max_ns: s.latency.max().map(|d| d.as_ns_f64()),
                    jitter_ns: s.latency.jitter().map(|d| d.as_ns_f64()),
                }
            })
            .collect();
        ScenarioMetrics {
            flows: flow_metrics,
            gs_flows: self.gs_flows,
            be_flows: self.be_flows,
            background_flows: self.background_flows,
            events: self.sim.events_processed(),
            outcome,
            window,
        }
    }

    /// Attaches one [`TrafficSpec`]: a point source, or one source per
    /// node in grid-id order for distributed specs. An associated
    /// function over the destructured fields so [`attach_phase`]:
    /// [`Self::attach_phase`] can iterate the spec it borrows from
    /// without cloning it.
    fn attach_traffic(
        sim: &mut NocSim,
        flows: &mut Vec<(u32, FlowKind)>,
        be_flows: &mut Vec<usize>,
        background_flows: &mut Vec<usize>,
        t: &TrafficSpec,
    ) {
        match t.src {
            Some(src) => {
                let f = sim.add_traffic_source(
                    src,
                    t.spatial.clone(),
                    t.payload_words,
                    t.temporal,
                    t.name_prefix.clone(),
                    t.window,
                );
                be_flows.push(flows.len());
                flows.push((f, FlowKind::Be));
            }
            None => {
                for i in 0..sim.network().grid().len() {
                    let node = sim.network().grid().id_at(i);
                    let f = sim.add_traffic_source(
                        node,
                        t.spatial.clone(),
                        t.payload_words,
                        t.temporal,
                        format!("{}{node}", t.name_prefix),
                        t.window,
                    );
                    background_flows.push(flows.len());
                    flows.push((f, FlowKind::Be));
                }
            }
        }
    }

    #[allow(deprecated)]
    fn attach_phase(&mut self, phase: Phase) {
        let PreparedScenario {
            spec,
            sim,
            conns,
            flows,
            gs_flows,
            be_flows,
            background_flows,
        } = self;
        for (g, c) in spec.gs.iter().zip(conns.iter()) {
            if g.phase == phase {
                let f = sim.add_gs_source(*c, g.pattern, g.name.clone(), g.window);
                gs_flows.push(flows.len());
                flows.push((f, FlowKind::Gs));
            }
        }
        for b in &spec.be {
            if b.phase == phase {
                let f = sim.add_be_source(
                    b.src,
                    b.dests.clone(),
                    b.payload_words,
                    b.pattern,
                    b.name.clone(),
                    b.window,
                );
                be_flows.push(flows.len());
                flows.push((f, FlowKind::Be));
            }
        }
        for t in &spec.traffic {
            if t.phase == phase {
                Self::attach_traffic(sim, flows, be_flows, background_flows, t);
            }
        }
        if let Some(bg) = &spec.background {
            if bg.phase == phase {
                // The legacy shim rides the computed uniform pattern —
                // same RNG stream order, same per-emission draws as the
                // historical materialized pools.
                let shim = TrafficSpec {
                    src: None,
                    spatial: SpatialPattern::UniformRandom,
                    temporal: bg.pattern,
                    payload_words: bg.payload_words,
                    phase: bg.phase,
                    window: EmitWindow::default(),
                    name_prefix: bg.name_prefix.clone(),
                };
                Self::attach_traffic(sim, flows, be_flows, background_flows, &shim);
            }
        }
    }
}

/// The service class a measured flow belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Guaranteed-service flit stream on a connection.
    Gs,
    /// Best-effort packet flow.
    Be,
}

/// Measured statistics for one flow, in attachment order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMetric {
    /// Flow name.
    pub name: String,
    /// Service class.
    pub kind: FlowKind,
    /// Flits/packets injected (including warmup).
    pub injected: u64,
    /// Flits/packets delivered (including warmup).
    pub delivered: u64,
    /// Sequence-order violations observed.
    pub sequence_errors: u64,
    /// Latency samples recorded in the measurement window.
    pub latency_count: u64,
    /// Delivered throughput over the window, Mflit/s (GS) or Mpkt/s (BE).
    pub throughput_m: f64,
    /// Mean in-window latency, ns.
    pub mean_ns: Option<f64>,
    /// Median in-window latency, ns.
    pub p50_ns: Option<f64>,
    /// 95th-percentile in-window latency, ns.
    pub p95_ns: Option<f64>,
    /// 99th-percentile in-window latency, ns.
    pub p99_ns: Option<f64>,
    /// Worst in-window latency, ns.
    pub max_ns: Option<f64>,
    /// Jitter (max − min), ns.
    pub jitter_ns: Option<f64>,
}

/// Everything measured by one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Per-flow metrics, in attachment order.
    pub flows: Vec<FlowMetric>,
    /// Indices into `flows` for GS sources, in spec order.
    pub gs_flows: Vec<usize>,
    /// Indices into `flows` for point-source BE flows (legacy `be` and
    /// single-source [`TrafficSpec`]s), in spec order.
    pub be_flows: Vec<usize>,
    /// Indices into `flows` for distributed traffic sources, in
    /// attachment (spec, then grid-id) order.
    pub background_flows: Vec<usize>,
    /// Total kernel events processed (simulator effort).
    pub events: u64,
    /// How the measurement run terminated.
    pub outcome: RunOutcome,
    /// Elapsed measurement window.
    pub window: SimDuration,
}

impl ScenarioMetrics {
    /// Metrics for the `i`-th GS flow of the spec.
    ///
    /// # Panics
    ///
    /// Panics if the scenario had fewer GS flows.
    pub fn gs(&self, i: usize) -> &FlowMetric {
        &self.flows[self.gs_flows[i]]
    }

    /// Metrics for the `i`-th point-source BE flow of the spec.
    ///
    /// # Panics
    ///
    /// Panics if the scenario had fewer BE flows.
    pub fn be(&self, i: usize) -> &FlowMetric {
        &self.flows[self.be_flows[i]]
    }

    /// Every BE-class flow (point and distributed), in attachment order.
    pub fn be_all(&self) -> impl Iterator<Item = &FlowMetric> {
        self.flows.iter().filter(|f| f.kind == FlowKind::Be)
    }

    /// Aggregate delivered GS throughput, Mflit/s.
    pub fn gs_throughput_m(&self) -> f64 {
        // fold, not sum: f64's Sum identity is -0.0, which would leak
        // "-0" into the CSV of GS-free jobs.
        self.gs_flows
            .iter()
            .map(|&i| self.flows[i].throughput_m)
            .fold(0.0, |a, b| a + b)
    }

    /// Aggregate delivered BE throughput, Mpkt/s.
    pub fn be_throughput_m(&self) -> f64 {
        self.be_all()
            .map(|f| f.throughput_m)
            .fold(0.0, |a, b| a + b)
    }

    /// Sample-weighted mean BE latency over all BE flows, ns (the
    /// saturation-curve aggregation: each latency sample counts once).
    pub fn be_weighted_mean_ns(&self) -> f64 {
        let (sum, n) = self
            .be_all()
            .filter_map(|f| f.mean_ns.map(|m| (m, f.latency_count)))
            .fold((0.0, 0u64), |(s, n), (m, c)| (s + m * c as f64, n + c));
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    /// Unweighted mean of per-flow mean BE latencies, ns (the Fig. 8
    /// aggregation: each *flow* counts once).
    pub fn be_mean_of_means_ns(&self) -> f64 {
        let (sum, n) = self
            .be_all()
            .filter_map(|f| f.mean_ns)
            .fold((0.0, 0u32), |(s, n), m| (s + m, n + 1));
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }

    /// Worst per-flow p99 BE latency, ns.
    pub fn be_p99_worst_ns(&self) -> f64 {
        self.be_all().filter_map(|f| f.p99_ns).fold(0.0, f64::max)
    }

    /// Worst per-flow median BE latency, ns.
    pub fn be_p50_worst_ns(&self) -> f64 {
        self.be_all().filter_map(|f| f.p50_ns).fold(0.0, f64::max)
    }

    /// Worst per-flow p95 BE latency, ns.
    pub fn be_p95_worst_ns(&self) -> f64 {
        self.be_all().filter_map(|f| f.p95_ns).fold(0.0, f64::max)
    }

    /// Total BE packets injected (including warmup).
    pub fn be_injected(&self) -> u64 {
        self.be_all().map(|f| f.injected).sum()
    }

    /// Total BE packets delivered (including warmup).
    pub fn be_delivered(&self) -> u64 {
        self.be_all().map(|f| f.delivered).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::PatternKind;

    /// `ScenarioSpec` and every type a sweep worker moves across threads
    /// must stay `Send` — this is the compile-time contract the parallel
    /// sweep runner relies on.
    #[test]
    fn scenario_types_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ScenarioSpec>();
        assert_send::<TrafficSpec>();
        assert_send::<ScenarioMetrics>();
        assert_send::<NocSim>();
    }

    fn fig8_like(seed: u64) -> ScenarioSpec {
        ScenarioSpec::mesh(4, 4, seed)
            .warmup(SimDuration::from_us(5))
            .measure_for(SimDuration::from_us(30))
            .gs_flow(GsFlowSpec {
                src: RouterId::new(0, 0),
                dst: RouterId::new(3, 3),
                pattern: TemporalSpec::cbr(SimDuration::from_ns(12)),
                name: "gs".into(),
                window: EmitWindow::default(),
                phase: Phase::Measure,
            })
            .traffic(
                TrafficSpec::uniform_poisson(SimDuration::from_ns(300))
                    .payload(4)
                    .named("be-"),
            )
    }

    #[test]
    fn scenario_matches_imperative_construction() {
        // The scenario runner must reproduce a hand-driven NocSim
        // bit-for-bit — and the computed UniformRandom pattern must draw
        // the exact RNG sequence of the legacy materialized pools. This
        // is the golden test behind "rewritten binaries emit identical
        // output through the traffic-model redesign".
        let spec = fig8_like(55);
        let m = spec.run();

        let mut sim = NocSim::paper_mesh(4, 4, 55);
        let conn = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        let all: Vec<RouterId> = sim.network().grid().ids().collect();
        let mut be = Vec::new();
        for node in all.clone() {
            // The legacy path: materialize all-but-self, pick via
            // `choose` — byte-compatible with the computed pattern.
            let dests: Vec<_> = all.iter().copied().filter(|d| *d != node).collect();
            be.push(sim.add_be_source(
                node,
                dests,
                4,
                TemporalSpec::poisson(SimDuration::from_ns(300)),
                format!("be-{node}"),
                EmitWindow::default(),
            ));
        }
        sim.run_for(SimDuration::from_us(5));
        sim.begin_measurement();
        let gs = sim.add_gs_source(
            conn,
            TemporalSpec::cbr(SimDuration::from_ns(12)),
            "gs",
            EmitWindow::default(),
        );
        sim.run_for(SimDuration::from_us(30));

        assert_eq!(m.events, sim.events_processed());
        let g = sim.flow(gs);
        assert_eq!(m.gs(0).injected, g.injected);
        assert_eq!(m.gs(0).delivered, g.delivered);
        assert_eq!(m.gs(0).throughput_m, sim.flow_throughput_m(gs));
        assert_eq!(m.gs(0).mean_ns, g.latency.mean().map(|d| d.as_ns_f64()));
        for (i, f) in be.iter().enumerate() {
            let s = sim.flow(*f);
            let fm = &m.flows[m.background_flows[i]];
            assert_eq!(fm.injected, s.injected);
            assert_eq!(fm.delivered, s.delivered);
            assert_eq!(fm.mean_ns, s.latency.mean().map(|d| d.as_ns_f64()));
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_background_shim_matches_traffic_spec() {
        // The deprecated `background` field and the TrafficSpec uniform
        // pattern must be the same experiment, bit for bit.
        let mut legacy = ScenarioSpec::mesh(4, 4, 55)
            .warmup(SimDuration::from_us(5))
            .measure_for(SimDuration::from_us(30));
        legacy.background = Some(BeBackgroundSpec {
            pattern: TemporalSpec::poisson(SimDuration::from_ns(300)),
            payload_words: 4,
            name_prefix: "be-".into(),
            phase: Phase::Setup,
        });
        let modern = ScenarioSpec::mesh(4, 4, 55)
            .warmup(SimDuration::from_us(5))
            .measure_for(SimDuration::from_us(30))
            .traffic(
                TrafficSpec::uniform_poisson(SimDuration::from_ns(300))
                    .payload(4)
                    .named("be-"),
            );
        assert_eq!(legacy.run(), modern.run());
    }

    #[test]
    fn identical_specs_produce_identical_metrics() {
        let a = fig8_like(7).run();
        let b = fig8_like(7).run();
        assert_eq!(a, b);
    }

    #[test]
    fn builder_composes_gs_and_patterned_traffic() {
        let spec = ScenarioSpec::mesh(4, 4, 3)
            .warmup(SimDuration::from_us(2))
            .measure_for(SimDuration::from_us(10))
            .gs(
                RouterId::new(0, 0),
                RouterId::new(3, 3),
                TemporalSpec::cbr(SimDuration::from_ns(12)),
            )
            .traffic(TrafficSpec::new(
                SpatialPattern::Transpose,
                TemporalSpec::poisson(SimDuration::from_ns(500)),
            ));
        assert_eq!(spec.gs[0].name, "gs-0");
        let m = spec.run();
        assert!(m.gs(0).delivered > 0, "GS stream flows");
        // Transpose background: 12 of 16 nodes are off-diagonal senders.
        assert_eq!(m.background_flows.len(), 16);
        let active = m
            .background_flows
            .iter()
            .filter(|&&i| m.flows[i].injected > 0)
            .count();
        assert_eq!(active, 12, "diagonal transpose sources skip themselves");
    }

    #[test]
    fn every_pattern_kind_runs_on_a_mesh() {
        for kind in PatternKind::ALL {
            let m = ScenarioSpec::mesh(4, 4, 9)
                .measure_for(SimDuration::from_us(5))
                .traffic(TrafficSpec::new(
                    kind.spatial(4, 4),
                    TemporalSpec::poisson(SimDuration::from_ns(500)),
                ))
                .run();
            assert!(
                m.be_delivered() > 0,
                "pattern {kind} delivered nothing on 4x4"
            );
        }
    }

    #[test]
    fn quiescence_scenario_with_bounded_source_drains() {
        let spec = ScenarioSpec::mesh(4, 1, 21)
            .measure_to_quiescence()
            .traffic(
                TrafficSpec::new(
                    SpatialPattern::FixedPool(vec![RouterId::new(3, 0)]),
                    TemporalSpec::cbr(SimDuration::from_ns(100)),
                )
                .from_node(RouterId::new(0, 0))
                .payload(3)
                .named("hops")
                .phase(Phase::Measure)
                .window(EmitWindow {
                    limit: Some(20),
                    ..Default::default()
                }),
            );
        let m = spec.run();
        assert_eq!(m.outcome, RunOutcome::Quiescent);
        assert_eq!(m.be(0).injected, 20);
        assert_eq!(m.be(0).delivered, 20);
        assert_eq!(m.be(0).name, "hops");
    }
}
