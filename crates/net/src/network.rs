//! The network model: routers, links and NAs assembled on the simulation
//! kernel.
//!
//! The whole mesh is one [`mango_sim::Model`]: each event names its target
//! node and the handler translates [`RouterAction`]s into further events
//! (link traversals, unlock toggles, credits, NA activity). Cross-node
//! interaction happens exclusively through events, which keeps the model
//! single-borrow and the simulation deterministic.

use crate::conn::{ConnectionManager, OpenPlan};
use crate::fault::{FaultCounters, FaultKind, FaultSchedule, FaultState};
use crate::na::NaConfig;
use crate::na_arena::NaArena;
use crate::relay::{self, RelayTable, RelayTicket};
use crate::stats::NetStats;
use crate::telemetry::{
    TelemetryConfig, TelemetrySink, TelemetryState, TRACE_PID_FLITS, TRACE_PID_RECOVERY,
};
use crate::topology::Grid;
use crate::traffic::{Source, SourceKind};
use mango_core::{
    prog, BeArena, ConnectionId, Direction, Flit, GsArena, GsBufferRef, InternalEvent, LinkFlit,
    Router, RouterAction, RouterConfig, RouterId, Steer, UpstreamRef, VcId,
};
use mango_sim::{Ctx, Model, SimDuration, SimTime};
use mango_telemetry::{EvName, Sample, TelemetryReport};

/// An event in the network simulation.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// Deferred router-internal event.
    Router {
        /// Target router.
        id: RouterId,
        /// The event.
        ev: InternalEvent,
    },
    /// A flit arrives at a router's input port.
    LinkFlit {
        /// Receiving router.
        to: RouterId,
        /// Input port it arrives on.
        from: Direction,
        /// The flit and its steering.
        lf: LinkFlit,
    },
    /// An unlock toggle arrives at a router's output port.
    Unlock {
        /// Receiving router.
        to: RouterId,
        /// Output port.
        dir: Direction,
        /// VC wire index.
        wire: VcId,
    },
    /// A BE credit arrives at a router's output port.
    Credit {
        /// Receiving router.
        to: RouterId,
        /// Output port.
        dir: Direction,
    },
    /// The NA injects the next GS flit on an interface.
    NaGsInject {
        /// The node.
        id: RouterId,
        /// TX interface.
        iface: u8,
    },
    /// The NA injects the next BE flit.
    NaBeInject {
        /// The node.
        id: RouterId,
    },
    /// The core finished consuming a delivered GS flit.
    NaGsConsumed {
        /// The node.
        id: RouterId,
        /// Local GS interface.
        iface: u8,
    },
    /// A traffic source emits.
    SourceTick {
        /// Index into the source table.
        idx: usize,
    },
    /// A scheduled fault strikes (index into the installed schedule's
    /// application order).
    Fault {
        /// Fault event index.
        idx: usize,
    },
    /// A connection watchdog fires (index into the watchdog table).
    Watchdog {
        /// Watchdog index.
        idx: usize,
    },
    /// The telemetry epoch sampler fires: snapshot one time-series row
    /// and re-arm (self-rescheduling while other events remain).
    TelemetrySample {
        /// Which telemetry activation this sampler belongs to. A stale
        /// sampler event left in the queue by [`Network::take_telemetry`]
        /// carries the old generation and is ignored (and not re-armed)
        /// instead of starting a second sampler chain that would
        /// double-count epochs and profiled dispatches.
        generation: u32,
    },
}

/// A node: one router. The network adapter's hot state lives in the
/// network-owned [`NaArena`]; address it through [`Network::na`].
#[derive(Debug)]
pub struct Node {
    /// The router.
    pub router: Router,
}

/// An application packet produced by an [`NaApp`].
#[derive(Debug, Clone)]
pub struct AppPacket {
    /// Destination router.
    pub dest: RouterId,
    /// Payload words.
    pub payload: Vec<u32>,
    /// Flow to account the packet under, if any.
    pub flow: Option<u32>,
}

/// Application logic attached to an NA: reacts to delivered BE packets
/// (e.g. an OCP slave turning requests into responses).
///
/// `Send` is a supertrait so a whole [`Network`] can move to a worker
/// thread — parameter sweeps run one independent network per thread.
pub trait NaApp: std::fmt::Debug + Send {
    /// Handles a delivered packet (header flit first); returns packets to
    /// send in response.
    fn on_packet(&mut self, now: SimTime, packet: &[Flit]) -> Vec<AppPacket>;
}

/// The complete network state.
#[derive(Debug)]
pub struct Network {
    grid: Grid,
    nodes: Vec<Node>,
    /// Flat storage for every router's GS buffers (one slab for the
    /// mesh; routers address it via their [`mango_core::RouterSlots`]).
    arena: GsArena,
    be_arena: BeArena,
    na: NaArena,
    /// Live relay tickets for BE packets beyond the 15-hop header.
    relays: RelayTable,
    sources: Vec<Source>,
    stats: NetStats,
    conn: ConnectionManager,
    /// Application logic per node, indexed densely like `nodes`.
    apps: Vec<Option<Box<dyn NaApp>>>,
    scratch: Vec<RouterAction>,
    /// Reusable BE payload buffer for source ticks.
    payload_scratch: Vec<u32>,
    /// Reusable buffer for assembled BE packets at delivery.
    packet_scratch: Vec<Flit>,
    /// Reusable buffer for building BE packets at injection.
    flit_scratch: Vec<Flit>,
    router_cfg: RouterConfig,
    na_cfg: NaConfig,
    /// Live fault state; `None` (the default) is the healthy fast path —
    /// no schedule installed means bit-identical behavior to a build
    /// without the fault subsystem.
    faults: Option<Box<FaultState>>,
    /// Drop/spoof counters (also counts route-failure drops, which can
    /// only occur once links are masked out).
    counters: FaultCounters,
    /// Stream watchdogs for broken-connection detection.
    watchdogs: Vec<Watchdog>,
    /// Connections declared broken by a watchdog, awaiting collection by
    /// the recovery controller.
    broken: Vec<BrokenConn>,
    /// Telemetry sink; `Off` (the default) keeps every hook to a single
    /// branch so untelemetered runs stay byte- and perf-identical.
    telemetry: TelemetrySink,
    /// Bumped on every [`Network::enable_telemetry`]; sampler events
    /// tagged with older generations are stale chains and are dropped.
    telemetry_generation: u32,
    /// Debug-build flit-conservation ledger (flow-carrying flits only).
    #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
    cons: Conservation,
}

/// Debug-only conservation ledger: every flow-carrying flit in the
/// system is either in a buffer (found by walking arena/router/NA state)
/// or inside a scheduled event (`wire`). `outstanding` tracks entries
/// minus exits (deliveries and fault drops), so at any event boundary
/// `outstanding == buffered + wire`.
#[cfg(all(debug_assertions, not(feature = "lean-flit")))]
#[derive(Debug, Default, Clone, Copy)]
struct Conservation {
    /// Flow-carrying flits injected and not yet delivered or dropped.
    outstanding: i64,
    /// Flow-carrying flits inside scheduled events (`LinkFlit`,
    /// router-internal `BeMoved`).
    wire: i64,
}

/// A stream watchdog: declares its connection broken when the flow's
/// delivered count stops advancing between firings.
#[derive(Debug, Clone, Copy)]
struct Watchdog {
    conn: ConnectionId,
    flow: u32,
    timeout: SimDuration,
    last_delivered: u64,
    armed: bool,
}

/// A watchdog verdict: which connection broke, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokenConn {
    /// The broken connection.
    pub conn: ConnectionId,
    /// The flow its watchdog monitored.
    pub flow: u32,
    /// When the watchdog declared it broken.
    pub detected_at: SimTime,
}

impl Network {
    /// Builds a homogeneous mesh of the paper's routers over one flat
    /// buffer arena.
    pub fn new(grid: Grid, router_cfg: RouterConfig, na_cfg: NaConfig) -> Self {
        router_cfg
            .validate()
            .unwrap_or_else(|e| panic!("invalid router config: {e}"));
        let mut arena = GsArena::with_capacity(
            router_cfg.gs_vcs(),
            router_cfg.local_gs_ifaces(),
            router_cfg.buffer_depth(),
            router_cfg.na_rx_depth,
            grid.len(),
        );
        let mut be_arena = BeArena::with_capacity(
            router_cfg.be_input_depth,
            router_cfg.be_output_depth,
            router_cfg.be_link_credits,
            grid.len(),
        );
        let na = NaArena::new(router_cfg.local_gs_ifaces(), na_cfg.clone(), grid.len());
        // One shared config allocation for the whole mesh: every router's
        // per-event timing reads hit the same cache lines.
        let shared_cfg = std::sync::Arc::new(router_cfg.clone());
        let nodes: Vec<Node> = grid
            .ids()
            .map(|id| Node {
                router: Router::new_in(id, shared_cfg.clone(), &mut arena, &mut be_arena),
            })
            .collect();
        let apps = (0..nodes.len()).map(|_| None).collect();
        Network {
            conn: ConnectionManager::new(router_cfg.gs_vcs(), router_cfg.local_gs_ifaces()),
            grid,
            nodes,
            arena,
            be_arena,
            na,
            relays: RelayTable::new(),
            sources: Vec::new(),
            stats: NetStats::new(),
            apps,
            scratch: Vec::new(),
            payload_scratch: Vec::new(),
            packet_scratch: Vec::new(),
            flit_scratch: Vec::new(),
            router_cfg,
            na_cfg,
            faults: None,
            counters: FaultCounters::default(),
            watchdogs: Vec::new(),
            broken: Vec::new(),
            telemetry: TelemetrySink::Off,
            telemetry_generation: 0,
            #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
            cons: Conservation::default(),
        }
    }

    /// The topology.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The router configuration shared by all nodes.
    pub fn router_cfg(&self) -> &RouterConfig {
        &self.router_cfg
    }

    /// The NA configuration shared by all nodes.
    pub fn na_cfg(&self) -> &NaConfig {
        &self.na_cfg
    }

    /// Statistics registry.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable statistics registry (for measurement-window control).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// The connection manager.
    pub fn connections(&self) -> &ConnectionManager {
        &self.conn
    }

    /// Mutable connection manager (used by the harness to plan opens).
    pub fn connections_mut(&mut self) -> &mut ConnectionManager {
        &mut self.conn
    }

    /// The shared GS buffer arena.
    pub fn arena(&self) -> &GsArena {
        &self.arena
    }

    /// The shared BE latch/steering arena.
    pub fn be_arena(&self) -> &BeArena {
        &self.be_arena
    }

    /// The shared NA state arena (indexed by row-major node).
    pub fn na(&self) -> &NaArena {
        &self.na
    }

    /// Mutable NA arena access (harness: binding, raw injection).
    pub fn na_mut(&mut self) -> &mut NaArena {
        &mut self.na
    }

    /// Plans a connection open along the default XY route (see
    /// [`ConnectionManager::open`]); the network lends its relay table so
    /// config packets can cross meshes wider than the BE header radius.
    ///
    /// # Errors
    ///
    /// Propagates allocation/routing failures; nothing is reserved then.
    pub fn plan_open(
        &mut self,
        src: RouterId,
        dst: RouterId,
    ) -> Result<OpenPlan, crate::conn::ConnError> {
        self.conn.open(&self.grid, &mut self.relays, src, dst)
    }

    /// Plans a connection open along an explicit path (see
    /// [`ConnectionManager::open_along`]).
    ///
    /// # Errors
    ///
    /// Propagates allocation/path-validation failures.
    pub fn plan_open_along(
        &mut self,
        src: RouterId,
        dst: RouterId,
        dirs: &[Direction],
    ) -> Result<OpenPlan, crate::conn::ConnError> {
        self.conn
            .open_along(&self.grid, &mut self.relays, src, dst, dirs)
    }

    /// Plans a connection close (see [`ConnectionManager::close`]).
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown or not open.
    pub fn plan_close(
        &mut self,
        id: mango_core::ConnectionId,
    ) -> Result<crate::conn::ClosePlan, crate::conn::ConnError> {
        self.conn.close(&self.grid, &mut self.relays, id)
    }

    /// Plans a forced, out-of-band teardown (see
    /// [`ConnectionManager::force_close`]); the caller applies the local
    /// writes and unbinds the NA interface.
    ///
    /// # Errors
    ///
    /// Fails only if the connection is unknown.
    pub fn plan_force_close(
        &mut self,
        id: mango_core::ConnectionId,
        now: mango_sim::SimTime,
    ) -> Result<crate::conn::ForceClosePlan, crate::conn::ConnError> {
        self.conn.force_close(&self.grid, id, now)
    }

    /// The node at `id`.
    pub fn node(&self, id: RouterId) -> &Node {
        &self.nodes[self.grid.index(id)]
    }

    /// Mutable node access (harness: programming, NA binding).
    pub fn node_mut(&mut self, id: RouterId) -> &mut Node {
        let idx = self.grid.index(id);
        &mut self.nodes[idx]
    }

    /// All nodes, row-major.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Attaches application logic to a node's NA.
    pub fn set_app(&mut self, id: RouterId, app: Box<dyn NaApp>) {
        let idx = self.grid.index(id);
        self.apps[idx] = Some(app);
    }

    /// Registers a traffic source; returns its index for `SourceTick`.
    pub fn add_source(&mut self, source: Source) -> usize {
        self.sources.push(source);
        self.sources.len() - 1
    }

    /// The source table.
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// Silences every traffic source feeding `flow` (recovery: stop
    /// streaming into a broken connection before tearing it down).
    pub fn stop_sources_of_flow(&mut self, flow: u32) {
        for s in &mut self.sources {
            if s.flow == flow {
                s.done = true;
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection and detection
    // ------------------------------------------------------------------

    /// Installs a fault schedule and returns the application times, in
    /// event-index order; the caller must schedule a
    /// [`NetEvent::Fault`]`{ idx }` at each (see
    /// `NocSim::install_faults`). Only one schedule per network.
    ///
    /// # Panics
    ///
    /// Panics if a schedule is already installed or the schedule
    /// references off-grid elements.
    pub fn install_faults(&mut self, schedule: FaultSchedule) -> Vec<SimTime> {
        assert!(self.faults.is_none(), "fault schedule already installed");
        let (state, times) = FaultState::install(schedule, &self.grid);
        self.faults = Some(Box::new(state));
        times
    }

    /// Drop/spoof counters (all zero while the mesh is healthy).
    pub fn fault_counters(&self) -> FaultCounters {
        self.counters
    }

    // ------------------------------------------------------------------
    // Telemetry
    // ------------------------------------------------------------------

    /// Activates the telemetry sink. The caller arms the epoch sampler
    /// via [`Network::telemetry_sampler_rearm`] and schedules the
    /// returned cadence (see `NocSim::enable_telemetry`).
    ///
    /// # Panics
    ///
    /// Panics if telemetry is already active.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        assert!(!self.telemetry.is_active(), "telemetry already enabled");
        self.telemetry_generation = self.telemetry_generation.wrapping_add(1);
        self.telemetry = TelemetrySink::Active(TelemetryState::new(cfg, self.telemetry_generation));
    }

    /// The telemetry sink.
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// Detaches the sink and finalizes it into a report (metric totals
    /// are filled from the statistics registries at this point). Returns
    /// `None` if telemetry was never enabled. The sink reverts to `Off`.
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        let mut st = match std::mem::take(&mut self.telemetry) {
            TelemetrySink::Off => return None,
            TelemetrySink::Active(st) => st,
        };
        let (injected, delivered) = self.stats.totals();
        let m = &mut st.metrics;
        for (name, value) in [
            ("flits.injected", injected),
            ("flits.delivered", delivered),
            ("flits.in_flight", self.stats.in_flight()),
            ("faults.gs_dropped", self.counters.gs_flits_dropped),
            ("faults.be_dropped", self.counters.be_flits_dropped),
            ("faults.spoofed_unlocks", self.counters.spoofed_unlocks),
            ("faults.spoofed_credits", self.counters.spoofed_credits),
            ("faults.be_route_drops", self.counters.be_route_drops),
            ("faults.relay_route_drops", self.counters.relay_route_drops),
            ("faults.ack_route_drops", self.counters.ack_route_drops),
            ("trace.flit_events", st.flit_events as u64),
            ("trace.flit_events_dropped", st.flit_events_dropped),
        ] {
            let id = m.counter(name);
            m.set_counter(id, value);
        }
        Some(st.into_report())
    }

    /// Records a lifecycle span on the recovery track (no-op while the
    /// sink is off) — the cold-path hook the QoS recovery engine uses.
    #[cold]
    #[inline(never)]
    pub fn telemetry_span(
        &mut self,
        cat: &'static str,
        name: impl Into<EvName>,
        start: SimTime,
        end: SimTime,
        tid: u32,
        args: Vec<(&'static str, u64)>,
    ) {
        if let Some(st) = self.telemetry.state_mut() {
            st.trace.span(
                cat,
                name,
                start.as_ps(),
                end.as_ps(),
                TRACE_PID_RECOVERY,
                tid,
                args,
            );
        }
    }

    /// Records an instant on the recovery track (no-op while off).
    #[cold]
    #[inline(never)]
    pub fn telemetry_instant(
        &mut self,
        cat: &'static str,
        name: impl Into<EvName>,
        at: SimTime,
        tid: u32,
        args: Vec<(&'static str, u64)>,
    ) {
        if let Some(st) = self.telemetry.state_mut() {
            st.trace
                .instant(cat, name, at.as_ps(), TRACE_PID_RECOVERY, tid, args);
        }
    }

    /// Sets a registered gauge (no-op while off).
    #[cold]
    #[inline(never)]
    pub fn telemetry_gauge(&mut self, name: &'static str, value: i64) {
        if let Some(st) = self.telemetry.state_mut() {
            let id = st.metrics.gauge(name);
            st.metrics.set_gauge(id, value);
        }
    }

    /// Adds to a registered counter (no-op while off).
    #[cold]
    #[inline(never)]
    pub fn telemetry_counter_add(&mut self, name: &'static str, n: u64) {
        if let Some(st) = self.telemetry.state_mut() {
            let id = st.metrics.counter(name);
            st.metrics.inc(id, n);
        }
    }

    /// One epoch sampler firing: append a snapshot row, then re-arm
    /// unless this sampler is the only thing keeping the simulation
    /// alive (`ctx.pending() == 0` right after the pop).
    #[cold]
    #[inline(never)]
    fn on_telemetry_sample(&mut self, generation: u32, ctx: &mut Ctx<NetEvent>) {
        // A sampler from a previous activation (left pending across
        // `take_telemetry` + `enable_telemetry`) must neither snapshot
        // nor re-arm — otherwise two chains run at once and every epoch
        // and profiled sampler dispatch is counted twice.
        match &self.telemetry {
            TelemetrySink::Active(st) if st.generation == generation => {}
            _ => return,
        }
        let now = ctx.now();
        let (injected, delivered) = self.stats.totals();
        let gs_buffered = self.arena.buffered_flits() as u64;
        let mut be_buffered = 0u64;
        let mut na_gs = 0u64;
        let mut na_be = 0u64;
        for (idx, node) in self.nodes.iter().enumerate() {
            be_buffered += node.router.be_flits_buffered(&self.be_arena) as u64;
            na_gs += self.na.gs_queued_total(idx) as u64;
            na_be += self.na.be_backlog(idx) as u64;
        }
        // Link utilization in exact micro-units (integer math: grants ×
        // link-cycle ÷ elapsed), aggregated over every directed link.
        let elapsed = now.as_ps() as u128;
        let cycle = self.router_cfg.timing.link_cycle.as_ps() as u128;
        let mut links = 0u128;
        let mut util_sum = 0u128;
        let mut util_max = 0u64;
        for node in &self.nodes {
            let id = node.router.id();
            for dir in Direction::ALL {
                if self.grid.neighbor(id, dir).is_none() {
                    continue;
                }
                links += 1;
                let util = (node.router.stats().grants(dir.index()) as u128 * cycle * 1_000_000)
                    .checked_div(elapsed)
                    .unwrap_or(0) as u64;
                util_sum += util as u128;
                util_max = util_max.max(util);
            }
        }
        let util_mean = util_sum.checked_div(links).unwrap_or(0) as u64;
        let (gs_dropped, be_dropped) = (
            self.counters.gs_flits_dropped,
            self.counters.be_flits_dropped,
        );
        let st = self.telemetry.state_mut().expect("checked active");
        st.epochs.push(vec![
            Sample::Micro(now.as_ps()),
            Sample::U64(injected),
            Sample::U64(delivered),
            Sample::U64(injected - delivered),
            Sample::U64(gs_buffered),
            Sample::U64(be_buffered),
            Sample::U64(na_gs),
            Sample::U64(na_be),
            Sample::Micro(util_mean),
            Sample::Micro(util_max),
            Sample::U64(gs_dropped),
            Sample::U64(be_dropped),
        ]);
        st.sampler_armed = ctx.pending() > 0;
        if st.sampler_armed {
            ctx.schedule(
                st.cfg.sample_every,
                NetEvent::TelemetrySample { generation },
            );
        }
    }

    /// Marks the epoch sampler armed and returns the cadence and
    /// generation to schedule the next [`NetEvent::TelemetrySample`]
    /// with — or `None` when telemetry is off or a sampler event is
    /// already pending. The run harness calls this at every run-segment
    /// start so a sampler that let an idle queue drain (e.g. during a
    /// warmup with no setup-phase traffic) revives once sources attach.
    pub fn telemetry_sampler_rearm(&mut self) -> Option<(SimDuration, u32)> {
        let st = self.telemetry.state_mut()?;
        if st.sampler_armed {
            return None;
        }
        st.sampler_armed = true;
        Some((st.cfg.sample_every, st.generation))
    }

    /// Records a per-hop grant instant for an instrumented flit.
    #[cold]
    #[inline(never)]
    fn t9n_hop(&mut self, now: SimTime, id: RouterId, dir: Direction, flit: &Flit) {
        let Some(st) = self.telemetry.state_mut() else {
            return;
        };
        if !st.cfg.trace_flits || !st.reserve_flit_event() {
            return;
        }
        st.trace.instant(
            "hop",
            "hop",
            now.as_ps(),
            TRACE_PID_FLITS,
            flit.flow(),
            vec![
                ("seq", flit.seq()),
                ("x", id.x as u64),
                ("y", id.y as u64),
                ("dir", dir.index() as u64),
            ],
        );
    }

    /// Records a relay re-injection instant for an instrumented BE
    /// packet crossing a chiplet boundary.
    #[cold]
    #[inline(never)]
    fn t9n_relay(&mut self, now: SimTime, id: RouterId, flit: &Flit) {
        let Some(st) = self.telemetry.state_mut() else {
            return;
        };
        if !st.cfg.trace_flits || !st.reserve_flit_event() {
            return;
        }
        st.trace.instant(
            "hop",
            "relay",
            now.as_ps(),
            TRACE_PID_FLITS,
            flit.flow(),
            vec![("seq", flit.seq()), ("x", id.x as u64), ("y", id.y as u64)],
        );
    }

    /// Records an end-to-end journey span for a delivered flit/packet
    /// and feeds the latency histogram.
    #[cold]
    #[inline(never)]
    fn t9n_deliver(&mut self, name: &'static str, now: SimTime, flit: &Flit, gs: bool) {
        let Some(st) = self.telemetry.state_mut() else {
            return;
        };
        let latency_ns = now.since(flit.injected_at()).as_ps() / 1000;
        let hist = if gs {
            st.hist_gs_latency
        } else {
            st.hist_be_latency
        };
        st.metrics.observe(hist, latency_ns);
        if !st.cfg.trace_flits || !st.reserve_flit_event() {
            return;
        }
        st.trace.span(
            "flit",
            name,
            flit.injected_at().as_ps(),
            now.as_ps(),
            TRACE_PID_FLITS,
            flit.flow(),
            vec![("seq", flit.seq())],
        );
    }

    /// Records a fault-drop instant for an instrumented flit.
    #[cold]
    #[inline(never)]
    fn t9n_drop(&mut self, now: SimTime, id: RouterId, dir: Direction, flit: &Flit) {
        let Some(st) = self.telemetry.state_mut() else {
            return;
        };
        if !st.cfg.trace_flits || !st.reserve_flit_event() {
            return;
        }
        st.trace.instant(
            "fault",
            "drop",
            now.as_ps(),
            TRACE_PID_FLITS,
            flit.flow(),
            vec![
                ("seq", flit.seq()),
                ("x", id.x as u64),
                ("y", id.y as u64),
                ("dir", dir.index() as u64),
            ],
        );
    }

    // ------------------------------------------------------------------
    // Debug flit-conservation ledger
    // ------------------------------------------------------------------

    /// Asserts the flit-conservation invariant: every flow-carrying flit
    /// ever injected is delivered, fault-dropped, buffered somewhere, or
    /// inside a scheduled event. Call between events (e.g. after a run).
    /// Compiled to a no-op in release builds and under `lean-flit`.
    pub fn debug_check_conservation(&self) {
        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
        {
            let buffered: i64 = self.arena.flow_flits() as i64
                + self
                    .nodes
                    .iter()
                    .enumerate()
                    .map(|(i, n)| {
                        n.router.flow_flits_buffered(&self.be_arena) + self.na.flow_flits(i)
                    })
                    .sum::<u64>() as i64;
            assert_eq!(
                self.cons.outstanding,
                buffered + self.cons.wire,
                "flit conservation violated: outstanding {} != buffered {} + wire {}",
                self.cons.outstanding,
                buffered,
                self.cons.wire,
            );
        }
    }

    /// Accounts flow-carrying flits discarded outside the event loop
    /// (forced NA unbind during recovery). No-op in release/lean builds.
    pub fn debug_note_discarded(&mut self, n: u64) {
        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
        {
            self.cons.outstanding -= n as i64;
        }
        #[cfg(any(not(debug_assertions), feature = "lean-flit"))]
        let _ = n;
    }

    /// Registers a stream watchdog on `conn`'s traffic `flow` and returns
    /// its index; the caller must schedule the first
    /// [`NetEvent::Watchdog`]`{ idx }` after `timeout` (see
    /// `NocSim::arm_watchdog`). The watchdog re-arms itself while the
    /// flow's delivered count keeps advancing and declares the connection
    /// broken the first time a whole timeout passes without progress.
    pub fn add_watchdog(&mut self, conn: ConnectionId, flow: u32, timeout: SimDuration) -> usize {
        let last_delivered = self.stats.delivered(flow);
        self.watchdogs.push(Watchdog {
            conn,
            flow,
            timeout,
            last_delivered,
            armed: true,
        });
        self.watchdogs.len() - 1
    }

    /// Disarms every watchdog monitoring `conn` (recovery in progress —
    /// silence duplicate verdicts until the replacement path is armed).
    pub fn disarm_watchdogs(&mut self, conn: ConnectionId) {
        for w in &mut self.watchdogs {
            if w.conn == conn {
                w.armed = false;
            }
        }
    }

    /// Drains the list of connections declared broken by watchdogs.
    pub fn take_broken(&mut self) -> Vec<BrokenConn> {
        std::mem::take(&mut self.broken)
    }

    fn on_watchdog(&mut self, idx: usize, ctx: &mut Ctx<NetEvent>) {
        let w = self.watchdogs[idx];
        if !w.armed {
            return;
        }
        let delivered = self.stats.delivered(w.flow);
        if delivered > w.last_delivered {
            self.watchdogs[idx].last_delivered = delivered;
            ctx.schedule(w.timeout, NetEvent::Watchdog { idx });
        } else {
            self.watchdogs[idx].armed = false;
            self.broken.push(BrokenConn {
                conn: w.conn,
                flow: w.flow,
                detected_at: ctx.now(),
            });
        }
    }

    /// Applies fault event `idx` of the installed schedule.
    fn apply_fault(&mut self, idx: usize) {
        let Some(faults) = self.faults.as_mut() else {
            return;
        };
        let ev = faults.event(idx);
        match ev.kind {
            FaultKind::LinkDown { from, dir } => self.grid.fail_link(from, dir),
            // Flaky windows are tracked from installation; the kernel
            // event marks the application time for observability, the
            // drop decisions themselves are purely time-gated.
            FaultKind::LinkFlaky { .. } => {}
            FaultKind::RouterDown { id } => {
                faults.mark_dead(self.grid.index(id));
                self.grid.fail_router(id);
                for s in &mut self.sources {
                    let at = match s.kind {
                        SourceKind::Gs { router, .. } => router,
                        SourceKind::Be { router, .. } => router,
                    };
                    if at == id {
                        s.done = true;
                    }
                }
            }
            FaultKind::StuckVc { router, dir, vc } => faults.mark_stuck(router, dir, vc),
        }
    }

    /// Decides whether a flit leaving `from` toward `dir` is blackholed
    /// by a fault; if so, synthesizes the flow-control feedback the
    /// downstream router would have produced (see [`crate::fault`] module
    /// docs) and returns `true`. Only called with faults installed.
    fn blackhole_flit(
        &mut self,
        from: RouterId,
        dir: Direction,
        to: RouterId,
        lf: &LinkFlit,
        base_delay: SimDuration,
        ctx: &mut Ctx<NetEvent>,
    ) -> bool {
        let now = ctx.now();
        let hard_down = !self.grid.link_up(from, dir);
        let faults = self.faults.as_mut().expect("caller checked");
        let drop = match lf.steer {
            // BE framing must advance on every flit crossing a
            // flaky-tracked link, dropped or not.
            Steer::BeUnit => {
                let flaky = faults.flaky_drops_be(from, dir, now, lf.flit.eop);
                hard_down || flaky
            }
            Steer::GsBuffer { dir: bd, vc } => {
                hard_down || faults.is_stuck(to, bd, vc) || faults.flaky_drops_gs(from, dir, now)
            }
            Steer::LocalGs { .. } => hard_down || faults.flaky_drops_gs(from, dir, now),
        };
        if !drop {
            return false;
        }
        if self.telemetry.is_active() && lf.flit.flow() != u32::MAX {
            let flit = lf.flit;
            self.t9n_drop(now, from, dir, &flit);
        }
        // The spoofed feedback departs where the real feedback would
        // have: after the flit's forward path plus the downstream
        // handling and the return trip.
        let t = &self.router_cfg.timing;
        let back_extra = self.grid.link_extra(to, dir.opposite());
        match lf.steer {
            Steer::BeUnit => {
                self.counters.be_flits_dropped += 1;
                self.counters.spoofed_credits += 1;
                let delay = base_delay + t.hop_forward + t.credit_return + back_extra;
                ctx.schedule(delay, NetEvent::Credit { to: from, dir });
            }
            Steer::GsBuffer { dir: bd, vc } => {
                self.counters.gs_flits_dropped += 1;
                let delay = base_delay + t.buffer_advance + t.unlock_path + back_extra;
                self.spoof_unlock(from, dir, to, GsBufferRef::Net { dir: bd, vc }, delay, ctx);
            }
            Steer::LocalGs { iface } => {
                self.counters.gs_flits_dropped += 1;
                let delay = base_delay + t.buffer_advance + t.unlock_path + back_extra;
                self.spoof_unlock(from, dir, to, GsBufferRef::Local { iface }, delay, ctx);
            }
        }
        true
    }

    /// Synthesizes the unlock toggle the receiver would have sent for a
    /// GS flit that was blackholed on its way into `buffer` at
    /// `receiver`. The unlock wire is read from the receiver's own
    /// connection table — exactly the mapping the real unlock would have
    /// used; if the entry is already torn down, no feedback is owed.
    fn spoof_unlock(
        &mut self,
        sender: RouterId,
        dir: Direction,
        receiver: RouterId,
        buffer: GsBufferRef,
        delay: SimDuration,
        ctx: &mut Ctx<NetEvent>,
    ) {
        let table = self.nodes[self.grid.index(receiver)].router.table();
        if let Some(UpstreamRef::Link { wire, .. }) = table.unlock(buffer) {
            self.counters.spoofed_unlocks += 1;
            ctx.schedule(
                delay,
                NetEvent::Unlock {
                    to: sender,
                    dir,
                    wire,
                },
            );
        }
    }

    /// Absorbs events addressed to a dead router (router fail-stop). A
    /// flit already in flight when the router died still owes its sender
    /// feedback — spoofed here; everything else vanishes silently.
    fn absorbed_by_dead_router(&mut self, event: &NetEvent, ctx: &mut Ctx<NetEvent>) -> bool {
        let target = match event {
            NetEvent::Router { id, .. }
            | NetEvent::NaGsInject { id, .. }
            | NetEvent::NaBeInject { id }
            | NetEvent::NaGsConsumed { id, .. } => *id,
            NetEvent::LinkFlit { to, .. }
            | NetEvent::Unlock { to, .. }
            | NetEvent::Credit { to, .. } => *to,
            _ => return false,
        };
        let dead = self
            .faults
            .as_ref()
            .is_some_and(|f| f.is_dead(self.grid.index(target)));
        if !dead {
            return false;
        }
        // Flits vanishing into the dead router leave both the wire and
        // the conservation ledger (counted as fault losses below).
        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
        match event {
            NetEvent::LinkFlit { lf, .. } if lf.flit.flow() != u32::MAX => {
                self.cons_wire(-1);
                self.cons_exit(1);
            }
            NetEvent::Router {
                ev: InternalEvent::BeMoved { flit, .. },
                ..
            } if flit.flow() != u32::MAX => {
                self.cons_wire(-1);
                self.cons_exit(1);
            }
            _ => {}
        }
        if let NetEvent::LinkFlit { to, from, lf } = event {
            if self.telemetry.is_active() && lf.flit.flow() != u32::MAX {
                let flit = lf.flit;
                self.t9n_drop(ctx.now(), *to, *from, &flit);
            }
            let sender = self
                .grid
                .neighbor(*to, *from)
                .expect("link flits come from neighbors");
            let t = &self.router_cfg.timing;
            let back_extra = self.grid.link_extra(*to, *from);
            match lf.steer {
                Steer::BeUnit => {
                    self.counters.be_flits_dropped += 1;
                    self.counters.spoofed_credits += 1;
                    let delay = t.hop_forward + t.credit_return + back_extra;
                    ctx.schedule(
                        delay,
                        NetEvent::Credit {
                            to: sender,
                            dir: from.opposite(),
                        },
                    );
                }
                Steer::GsBuffer { dir: bd, vc } => {
                    self.counters.gs_flits_dropped += 1;
                    let delay = t.buffer_advance + t.unlock_path + back_extra;
                    self.spoof_unlock(
                        sender,
                        from.opposite(),
                        *to,
                        GsBufferRef::Net { dir: bd, vc },
                        delay,
                        ctx,
                    );
                }
                Steer::LocalGs { iface } => {
                    self.counters.gs_flits_dropped += 1;
                    let delay = t.buffer_advance + t.unlock_path + back_extra;
                    self.spoof_unlock(
                        sender,
                        from.opposite(),
                        *to,
                        GsBufferRef::Local { iface },
                        delay,
                        ctx,
                    );
                }
            }
        }
        true
    }

    /// The router stage delays driving the event model.
    pub fn router_timing(&self) -> &mango_hw::RouterTiming {
        &self.router_cfg.timing
    }

    /// GS injection latency: clock-domain crossing + local-port forward
    /// path.
    pub fn inject_delay(&self) -> SimDuration {
        self.na_cfg.sync_delay + self.router_timing().hop_forward
    }

    /// Builds a BE packet and queues it at `src`'s NA; returns `true` if
    /// the caller must schedule a [`NetEvent::NaBeInject`] for `src` after
    /// [`Network::inject_delay`].
    pub fn enqueue_be_packet(
        &mut self,
        src: RouterId,
        dst: RouterId,
        payload: &[u32],
        flow: Option<u32>,
        now: SimTime,
    ) -> bool {
        let mut flits = std::mem::take(&mut self.flit_scratch);
        if relay::build_segmented_packet_into(
            &self.grid,
            &mut self.relays,
            src,
            dst,
            payload,
            false,
            &mut flits,
        )
        .is_err()
        {
            // Typed degradation: a masked-out link (or a degenerate pair)
            // drops the packet instead of aborting the process.
            self.counters.be_route_drops += 1;
            self.flit_scratch = flits;
            return false;
        }
        if let Some(flow) = flow {
            let seq = self.stats.on_inject(flow);
            for f in &mut flits {
                *f = f.with_meta(now, seq, flow);
            }
            #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
            self.cons_enter(flits.len() as u64);
        }
        let idx = self.grid.index(src);
        let inject = self.na.enqueue_be(idx, flits.iter().copied());
        self.flit_scratch = flits;
        inject
    }

    fn call_router(
        &mut self,
        id: RouterId,
        ctx: &mut Ctx<NetEvent>,
        f: impl FnOnce(&mut Router, &mut GsArena, &mut BeArena, &mut Vec<RouterAction>),
    ) {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        let idx = self.grid.index(id);
        f(
            &mut self.nodes[idx].router,
            &mut self.arena,
            &mut self.be_arena,
            &mut buf,
        );
        self.process_actions(id, &buf, ctx);
        self.scratch = buf;
    }

    fn process_actions(&mut self, id: RouterId, actions: &[RouterAction], ctx: &mut Ctx<NetEvent>) {
        for action in actions {
            match action {
                RouterAction::Internal { delay, event } => {
                    #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                    if let InternalEvent::BeMoved { flit, .. } = event {
                        if flit.flow() != u32::MAX {
                            self.cons_wire(1);
                        }
                    }
                    ctx.schedule(*delay, NetEvent::Router { id, ev: *event });
                }
                RouterAction::SendFlit { dir, lf, delay } => {
                    let to = self
                        .grid
                        .neighbor(id, *dir)
                        .unwrap_or_else(|| panic!("{id}: flit sent off-grid toward {dir}"));
                    let extra = self.grid.link_extra(id, *dir);
                    if self.faults.is_some()
                        && self.blackhole_flit(id, *dir, to, lf, *delay + extra, ctx)
                    {
                        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                        if lf.flit.flow() != u32::MAX {
                            self.cons_exit(1);
                        }
                        continue;
                    }
                    #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                    if lf.flit.flow() != u32::MAX {
                        self.cons_wire(1);
                    }
                    if self.telemetry.is_active() && lf.flit.flow() != u32::MAX {
                        let flit = lf.flit;
                        self.t9n_hop(ctx.now(), id, *dir, &flit);
                    }
                    ctx.schedule(
                        *delay + extra,
                        NetEvent::LinkFlit {
                            to,
                            from: dir.opposite(),
                            lf: *lf,
                        },
                    );
                }
                RouterAction::SendUnlock { dir, wire, delay } => {
                    let to = self
                        .grid
                        .neighbor(id, *dir)
                        .unwrap_or_else(|| panic!("{id}: unlock sent off-grid toward {dir}"));
                    let extra = self.grid.link_extra(id, *dir);
                    ctx.schedule(
                        *delay + extra,
                        NetEvent::Unlock {
                            to,
                            dir: dir.opposite(),
                            wire: *wire,
                        },
                    );
                }
                RouterAction::SendCredit { dir, delay } => {
                    let to = self
                        .grid
                        .neighbor(id, *dir)
                        .unwrap_or_else(|| panic!("{id}: credit sent off-grid toward {dir}"));
                    let extra = self.grid.link_extra(id, *dir);
                    ctx.schedule(
                        *delay + extra,
                        NetEvent::Credit {
                            to,
                            dir: dir.opposite(),
                        },
                    );
                }
                RouterAction::DeliverGs { iface, flit } => {
                    if flit.flow() != u32::MAX {
                        self.stats.on_deliver(
                            flit.flow(),
                            flit.seq(),
                            flit.injected_at(),
                            ctx.now(),
                        );
                        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                        self.cons_exit(1);
                        if self.telemetry.is_active() {
                            let flit = *flit;
                            self.t9n_deliver("gs", ctx.now(), &flit, true);
                        }
                    }
                    // The core consumes the flit, then frees the delivery
                    // slot.
                    let delay = self.na_cfg.consume_delay;
                    ctx.schedule(delay, NetEvent::NaGsConsumed { id, iface: *iface });
                }
                RouterAction::DeliverBe { flit } => {
                    let idx = self.grid.index(id);
                    let mut packet = std::mem::take(&mut self.packet_scratch);
                    if self.na.be_deliver(idx, *flit, &mut packet) {
                        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                        self.cons_exit(
                            packet.iter().filter(|f| f.flow() != u32::MAX).count() as u64
                        );
                        self.on_be_packet(id, &packet, ctx);
                    }
                    self.packet_scratch = packet;
                }
                RouterAction::NaUnlock { iface } => {
                    let idx = self.grid.index(id);
                    if self.na.gs_unlocked(idx, *iface) {
                        ctx.schedule(
                            self.inject_delay(),
                            NetEvent::NaGsInject { id, iface: *iface },
                        );
                    }
                }
                RouterAction::NaCredit => {
                    let idx = self.grid.index(id);
                    if self.na.be_credit(idx) {
                        ctx.schedule(self.inject_delay(), NetEvent::NaBeInject { id });
                    }
                }
            }
        }
    }

    /// A complete BE packet was delivered at `id`'s NA.
    fn on_be_packet(&mut self, id: RouterId, packet: &[Flit], ctx: &mut Ctx<NetEvent>) {
        let header = packet[0];
        // Acknowledgments complete connection programming. An ack is a
        // two-flit packet whose payload parses as a *known* token — the
        // token check keeps application payloads that alias the ack magic
        // from being misclassified. On large meshes the ack travels in
        // ≤15-link legs: delivered short of the connection source, it is
        // re-launched toward it from here.
        if packet.len() == 2 {
            if let Some(token) = prog::parse_ack_word(packet[1].data) {
                if self.conn.known_token(token) {
                    let target = self
                        .conn
                        .token_src(token)
                        .expect("known token has a source");
                    if target == id {
                        self.conn.on_ack(token, &self.grid, ctx.now());
                    } else {
                        self.forward_ack(id, target, token, ctx);
                    }
                    // Acks carry no flow metadata and never reach apps.
                    return;
                }
            }
        }
        // Relay continuations: a packet bound beyond the header radius
        // delivered at this intermediate NA — rebuild the next segment
        // and re-inject. Not a final delivery: no stats, no app. The
        // `relay` flit wire is set only by the segment builder, so an
        // application payload can never alias a continuation word.
        if packet.len() >= 2 && packet[1].relay {
            let ticket = relay::parse_relay_word(packet[1].data)
                .and_then(|t| self.relays.take(t))
                .expect("relay wire set on a word that is not a live continuation");
            self.forward_relay(id, ticket, packet, ctx);
            return;
        }
        if header.flow() != u32::MAX {
            self.stats
                .on_deliver(header.flow(), header.seq(), header.injected_at(), ctx.now());
            if self.telemetry.is_active() {
                self.t9n_deliver("be", ctx.now(), &header, false);
            }
        }
        let idx = self.grid.index(id);
        // Take the app out so it can borrow `self` for responses.
        if let Some(mut app) = self.apps[idx].take() {
            let responses = app.on_packet(ctx.now(), packet);
            self.apps[idx] = Some(app);
            for resp in responses {
                self.send_be_packet(id, resp.dest, &resp.payload, resp.flow, ctx.now(), ctx);
            }
        }
    }

    /// Re-launches an acknowledgment from relay node `from` toward the
    /// connection source it must reach (one more ≤15-link leg).
    fn forward_ack(
        &mut self,
        from: RouterId,
        target: RouterId,
        token: u16,
        ctx: &mut Ctx<NetEvent>,
    ) {
        let header = match relay::ack_leg_header(&self.grid, from, target) {
            Ok(h) => h,
            Err(_) => {
                // No surviving route back to the source: the ack is lost
                // and the open/close will be resolved by its watchdog or
                // poll deadline instead of a process abort.
                self.counters.ack_route_drops += 1;
                return;
            }
        };
        let mut flits = std::mem::take(&mut self.flit_scratch);
        mango_core::build_be_packet_into(header, &[prog::ack_word(token)], false, &mut flits);
        let idx = self.grid.index(from);
        if self.na.enqueue_be(idx, flits.iter().copied()) {
            ctx.schedule(self.inject_delay(), NetEvent::NaBeInject { id: from });
        }
        self.flit_scratch = flits;
    }

    /// Rebuilds a relayed packet's next segment at relay node `from` and
    /// re-injects it, preserving per-flit instrumentation metadata so
    /// end-to-end latency spans the whole journey.
    fn forward_relay(
        &mut self,
        from: RouterId,
        ticket: RelayTicket,
        packet: &[Flit],
        ctx: &mut Ctx<NetEvent>,
    ) {
        // Incoming layout: [header, continuation, payload...].
        let mut payload = std::mem::take(&mut self.payload_scratch);
        payload.clear();
        payload.extend(packet[2..].iter().map(|f| f.data));
        let mut flits = std::mem::take(&mut self.flit_scratch);
        if relay::build_segmented_packet_into(
            &self.grid,
            &mut self.relays,
            from,
            ticket.dst,
            &payload,
            ticket.config,
            &mut flits,
        )
        .is_err()
        {
            // The fault set cut every remaining route: the relayed packet
            // is dropped here (its ticket was already consumed).
            self.counters.relay_route_drops += 1;
            self.flit_scratch = flits;
            self.payload_scratch = payload;
            return;
        }
        // Copy metadata: header from header, and the tail (payload, plus
        // the fresh continuation word if the route relays again) from the
        // incoming tail, aligned at the packet ends.
        let out_len = flits.len();
        for i in 0..out_len - 1 {
            let src = &packet[packet.len() - 1 - i];
            let dst = &mut flits[out_len - 1 - i];
            *dst = dst.with_meta(src.injected_at(), src.seq(), src.flow());
        }
        let hdr = &packet[0];
        flits[0] = flits[0].with_meta(hdr.injected_at(), hdr.seq(), hdr.flow());
        #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
        self.cons_enter(flits.iter().filter(|f| f.flow() != u32::MAX).count() as u64);
        if self.telemetry.is_active() && hdr.flow() != u32::MAX {
            let hdr = *hdr;
            self.t9n_relay(ctx.now(), from, &hdr);
        }
        let idx = self.grid.index(from);
        if self.na.enqueue_be(idx, flits.iter().copied()) {
            ctx.schedule(self.inject_delay(), NetEvent::NaBeInject { id: from });
        }
        self.flit_scratch = flits;
        self.payload_scratch = payload;
    }

    /// Builds and enqueues a BE packet from `src` to `dst` at the source
    /// NA, scheduling injection if the NA was idle.
    pub fn send_be_packet(
        &mut self,
        src: RouterId,
        dst: RouterId,
        payload: &[u32],
        flow: Option<u32>,
        now: SimTime,
        ctx: &mut Ctx<NetEvent>,
    ) {
        if self.enqueue_be_packet(src, dst, payload, flow, now) {
            ctx.schedule(self.inject_delay(), NetEvent::NaBeInject { id: src });
        }
    }

    fn on_source_tick(&mut self, idx: usize, ctx: &mut Ctx<NetEvent>) {
        let now = ctx.now();
        if !self.sources[idx].may_emit(now) {
            // Throttled by stop/limit; try to schedule a later tick (start
            // gating is handled at add time).
            if let Some(next) = self.sources[idx].schedule_next(now) {
                ctx.schedule_at(next, NetEvent::SourceTick { idx });
            }
            return;
        }
        self.sources[idx].emitted += 1;
        let flow = self.sources[idx].flow;
        // Read what this tick emits without cloning the source kind (the
        // BE destination pool is a Vec; cloning it per tick is a hot-path
        // allocation).
        match self.sources[idx].kind {
            SourceKind::Gs { router, iface, .. } => {
                let seq = self.stats.on_inject(flow);
                let flit = Flit::gs(seq as u32).with_meta(now, seq, flow);
                #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                self.cons_enter(1);
                let node = self.grid.index(router);
                if self.na.enqueue_gs(node, iface, flit) {
                    ctx.schedule(
                        self.inject_delay(),
                        NetEvent::NaGsInject { id: router, iface },
                    );
                }
            }
            SourceKind::Be { .. } => {
                let source = &mut self.sources[idx];
                let SourceKind::Be {
                    router,
                    ref spatial,
                    payload_words,
                } = source.kind
                else {
                    unreachable!()
                };
                // Destination computed per emission — allocation-free for
                // every computed pattern. `None` (a self-loop or off-mesh
                // mapping, see [`SpatialPattern::pick`]) skips the
                // emission slot but keeps the tick cadence.
                let Some(dest) = spatial.pick(router, &self.grid, &mut source.rng) else {
                    if let Some(next) = self.sources[idx].schedule_next(now) {
                        ctx.schedule_at(next, NetEvent::SourceTick { idx });
                    }
                    return;
                };
                let mut payload = std::mem::take(&mut self.payload_scratch);
                payload.clear();
                payload.extend(0..payload_words as u32);
                self.send_be_packet(router, dest, &payload, Some(flow), now, ctx);
                self.payload_scratch = payload;
            }
        }
        if let Some(next) = self.sources[idx].schedule_next(now) {
            ctx.schedule_at(next, NetEvent::SourceTick { idx });
        }
    }
}

#[cfg(all(debug_assertions, not(feature = "lean-flit")))]
impl Network {
    #[inline]
    fn cons_enter(&mut self, n: u64) {
        self.cons.outstanding += n as i64;
    }
    #[inline]
    fn cons_exit(&mut self, n: u64) {
        self.cons.outstanding -= n as i64;
    }
    #[inline]
    fn cons_wire(&mut self, d: i64) {
        self.cons.wire += d;
    }
}

impl Model for Network {
    type Event = NetEvent;

    fn handle(&mut self, event: NetEvent, ctx: &mut Ctx<NetEvent>) {
        let now = ctx.now();
        if self.faults.is_some() && self.absorbed_by_dead_router(&event, ctx) {
            return;
        }
        match event {
            NetEvent::Router { id, ev } => {
                #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                if let InternalEvent::BeMoved { flit, .. } = &ev {
                    if flit.flow() != u32::MAX {
                        self.cons_wire(-1);
                    }
                }
                self.call_router(id, ctx, |r, bufs, be, act| {
                    r.on_internal(bufs, be, now, ev, act)
                })
            }
            NetEvent::LinkFlit { to, from, lf } => {
                #[cfg(all(debug_assertions, not(feature = "lean-flit")))]
                if lf.flit.flow() != u32::MAX {
                    self.cons_wire(-1);
                }
                self.call_router(to, ctx, |r, bufs, be, act| {
                    r.on_link_flit(bufs, be, now, from, lf, act)
                })
            }
            NetEvent::Unlock { to, dir, wire } => self.call_router(to, ctx, |r, bufs, be, act| {
                r.on_unlock(bufs, be, now, dir, wire, act)
            }),
            NetEvent::Credit { to, dir } => self.call_router(to, ctx, |r, bufs, be, act| {
                r.on_credit(bufs, be, now, dir, act)
            }),
            NetEvent::NaGsInject { id, iface } => {
                let idx = self.grid.index(id);
                let (steer, flit) = self.na.take_gs(idx, iface);
                self.call_router(id, ctx, |r, bufs, be, act| {
                    r.on_local_gs_inject(bufs, be, now, steer, flit, act)
                });
            }
            NetEvent::NaBeInject { id } => {
                let idx = self.grid.index(id);
                let (flit, more) = self.na.take_be(idx);
                if more {
                    ctx.schedule(self.na_cfg.be_inject_gap, NetEvent::NaBeInject { id });
                }
                self.call_router(id, ctx, |r, bufs, be, act| {
                    r.on_local_be_inject(bufs, be, now, flit, act)
                });
            }
            NetEvent::NaGsConsumed { id, iface } => {
                self.call_router(id, ctx, |r, bufs, be, act| {
                    r.on_local_gs_consume(bufs, be, now, iface, act)
                });
            }
            NetEvent::SourceTick { idx } => self.on_source_tick(idx, ctx),
            NetEvent::Fault { idx } => self.apply_fault(idx),
            NetEvent::Watchdog { idx } => self.on_watchdog(idx, ctx),
            NetEvent::TelemetrySample { generation } => self.on_telemetry_sample(generation, ctx),
        }
    }

    fn event_kind_names(&self) -> &'static [&'static str] {
        &[
            "router",
            "link_flit",
            "unlock",
            "credit",
            "na_gs_inject",
            "na_be_inject",
            "na_gs_consumed",
            "source_tick",
            "fault",
            "watchdog",
            "telemetry",
        ]
    }

    fn event_kind(&self, event: &NetEvent) -> usize {
        match event {
            NetEvent::Router { .. } => 0,
            NetEvent::LinkFlit { .. } => 1,
            NetEvent::Unlock { .. } => 2,
            NetEvent::Credit { .. } => 3,
            NetEvent::NaGsInject { .. } => 4,
            NetEvent::NaBeInject { .. } => 5,
            NetEvent::NaGsConsumed { .. } => 6,
            NetEvent::SourceTick { .. } => 7,
            NetEvent::Fault { .. } => 8,
            NetEvent::Watchdog { .. } => 9,
            NetEvent::TelemetrySample { .. } => 10,
        }
    }

    fn quiescent(&self) -> bool {
        self.nodes.iter().enumerate().all(|(i, n)| {
            n.router.is_quiescent(&self.arena, &self.be_arena) && self.na.is_quiescent(i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_builds_paper_mesh() {
        let net = Network::new(Grid::new(3, 3), RouterConfig::paper(), NaConfig::paper());
        assert_eq!(net.nodes().len(), 9);
        assert!(net.quiescent());
        assert_eq!(
            net.node(RouterId::new(2, 2)).router.id(),
            RouterId::new(2, 2)
        );
    }

    #[test]
    #[should_panic(expected = "invalid router config")]
    fn invalid_config_rejected() {
        let mut cfg = RouterConfig::paper();
        cfg.params.ports = 3;
        let _ = Network::new(Grid::new(2, 2), cfg, NaConfig::paper());
    }
}
