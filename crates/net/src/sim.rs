//! The simulation harness: a [`Kernel`] wrapping a [`Network`] with
//! convenience operations for experiments — opening connections, attaching
//! traffic, running warmup/measurement phases and reading statistics.

use crate::conn::{ConnError, ConnState};
use crate::fault::FaultSchedule;
use crate::na::NaConfig;
use crate::network::{BrokenConn, NetEvent, Network};
use crate::stats::FlowStats;
use crate::telemetry::TelemetryConfig;
use crate::topology::Grid;
use crate::traffic::{PatternState, Source, SourceKind, SpatialPattern, TemporalSpec};
use mango_core::{ConnectionId, RouterConfig, RouterId};
use mango_sim::{Kernel, KernelProfile, RunOutcome, SimDuration, SimRng, SimTime, WheelGeometry};
use mango_telemetry::TelemetryReport;

/// Emission bounds for a traffic source.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmitWindow {
    /// Delay before the first emission (from the current time).
    pub start_after: Option<SimDuration>,
    /// Stop emitting at this absolute time.
    pub stop_at: Option<SimTime>,
    /// Emit at most this many flits/packets.
    pub limit: Option<u64>,
}

/// A ready-to-run NoC simulation.
#[derive(Debug)]
pub struct NocSim {
    kernel: Kernel<Network>,
    rng: SimRng,
    next_stream: u64,
}

impl NocSim {
    /// Builds a simulation over `network` with the given random seed.
    ///
    /// The event-wheel geometry is chosen by
    /// [`WheelGeometry::for_mesh`] from the mesh size and the router
    /// timing — every mesh up to 8×8 gets the tuned default, larger
    /// meshes a proportionally wider wheel. Geometry never affects
    /// results (event order is a pure function of `(time, seq)`), only
    /// events/second.
    pub fn new(network: Network, seed: u64) -> Self {
        let geometry = WheelGeometry::for_mesh(
            network.grid().len(),
            network.router_timing().min_event_delay().as_ps(),
        );
        Self::with_geometry(network, seed, geometry)
    }

    /// Builds a simulation with an explicit event-wheel geometry — the
    /// probe knob for wheel-geometry validation experiments
    /// (`sim_rate --buckets N`).
    pub fn with_geometry(network: Network, seed: u64, geometry: WheelGeometry) -> Self {
        NocSim {
            kernel: Kernel::with_geometry(network, geometry),
            rng: SimRng::new(seed),
            next_stream: 0,
        }
    }

    /// The event-wheel geometry the kernel runs on.
    pub fn wheel_geometry(&self) -> WheelGeometry {
        self.kernel.queue_geometry()
    }

    /// A `width × height` mesh of the paper's routers with default NAs.
    pub fn paper_mesh(width: u8, height: u8, seed: u64) -> Self {
        NocSim::new(
            Network::new(
                Grid::new(width, height),
                RouterConfig::paper(),
                NaConfig::paper(),
            ),
            seed,
        )
    }

    /// A mesh with a custom router configuration.
    pub fn mesh_with(width: u8, height: u8, cfg: RouterConfig, seed: u64) -> Self {
        NocSim::new(
            Network::new(Grid::new(width, height), cfg, NaConfig::paper()),
            seed,
        )
    }

    /// Any [`crate::TopologySpec`] (torus, chiplet mesh-of-meshes) with
    /// the paper's routers and default NAs.
    pub fn paper_topology(spec: &crate::TopologySpec, seed: u64) -> Self {
        NocSim::new(
            Network::new(
                Grid::from_spec(spec),
                RouterConfig::paper(),
                NaConfig::paper(),
            ),
            seed,
        )
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// The network model.
    pub fn network(&self) -> &Network {
        self.kernel.model()
    }

    /// Mutable network access.
    pub fn network_mut(&mut self) -> &mut Network {
        self.kernel.model_mut()
    }

    /// Events processed so far (simulator effort metric).
    pub fn events_processed(&self) -> u64 {
        self.kernel.events_processed()
    }

    /// Events currently pending in the queue (concurrency probe).
    pub fn events_pending(&self) -> usize {
        self.kernel.events_pending()
    }

    /// Runs for `span` of simulated time.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        self.rearm_telemetry_sampler();
        self.kernel.run_for(span)
    }

    /// Runs until the event queue drains; reports stall (deadlock) if
    /// flits remain stuck.
    pub fn run_to_quiescence(&mut self) -> RunOutcome {
        self.rearm_telemetry_sampler();
        self.kernel.run_to_quiescence()
    }

    /// Runs with an event budget (livelock backstop for tests).
    pub fn run_with_budget(&mut self, horizon: SimTime, budget: u64) -> RunOutcome {
        self.rearm_telemetry_sampler();
        self.kernel.run_with_budget(horizon, budget)
    }

    /// Revives the epoch sampler if telemetry is active and the previous
    /// sampler let an empty queue drain (it refuses to keep an otherwise
    /// idle simulation alive). Called at every run-segment start so epoch
    /// coverage never depends on which phase carries traffic.
    fn rearm_telemetry_sampler(&mut self) {
        if let Some((cadence, generation)) = self.kernel.model_mut().telemetry_sampler_rearm() {
            self.kernel
                .schedule(cadence, NetEvent::TelemetrySample { generation });
        }
    }

    /// Schedules a raw network event — a hook for tests that drive the
    /// model below the public traffic API (e.g. hand-built BE routes).
    pub fn schedule_raw(&mut self, delay: SimDuration, event: NetEvent) {
        self.kernel.schedule(delay, event);
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Turns on telemetry collection and arms the epoch sampler (one
    /// [`NetEvent::TelemetrySample`] per `cfg.sample_every`, riding the
    /// ordinary event wheel so output is deterministic at any thread
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if telemetry is already enabled.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.kernel.model_mut().enable_telemetry(cfg);
        self.rearm_telemetry_sampler();
    }

    /// Detaches the collected telemetry as a finalized report, folding
    /// in end-of-run counters. Returns an empty report if telemetry was
    /// never enabled.
    pub fn take_telemetry(&mut self) -> TelemetryReport {
        self.kernel.model_mut().take_telemetry().unwrap_or_default()
    }

    /// Turns on kernel self-profiling (per-event-type dispatch counts and
    /// wheel-occupancy stats; see [`KernelProfile`]).
    pub fn enable_kernel_profiling(&mut self) {
        self.kernel.enable_profiling();
    }

    /// The kernel self-profile, if profiling was enabled.
    pub fn kernel_profile(&self) -> Option<&KernelProfile> {
        self.kernel.profile()
    }

    /// Turns on region-blocked event scheduling: within each staged time
    /// window the queue scans events grouped by mesh region (die on
    /// chiplet topologies, 8×8 tile otherwise — see [`Grid::region_of`])
    /// and counts dispatches per region. Delivery order is untouched, so
    /// every output stays byte-identical with the feature on or off; the
    /// scan grouping is the shard layout a parallel dispatcher would use.
    ///
    /// Call after the scenario's traffic sources are registered: the
    /// source→region map is snapshotted here, and ticks of sources added
    /// later are attributed to region 0.
    pub fn enable_region_blocking(&mut self) {
        let grid = self.network().grid().clone();
        let source_region: Vec<u32> = self
            .network()
            .sources()
            .iter()
            .map(|s| {
                let router = match s.kind {
                    SourceKind::Gs { router, .. } => router,
                    SourceKind::Be { router, .. } => router,
                };
                grid.region_of(router)
            })
            .collect();
        self.kernel.set_region_fn(move |ev: &NetEvent| match *ev {
            NetEvent::Router { id, .. }
            | NetEvent::NaGsInject { id, .. }
            | NetEvent::NaBeInject { id }
            | NetEvent::NaGsConsumed { id, .. } => grid.region_of(id),
            NetEvent::LinkFlit { to, .. }
            | NetEvent::Unlock { to, .. }
            | NetEvent::Credit { to, .. } => grid.region_of(to),
            NetEvent::SourceTick { idx } => source_region.get(idx).copied().unwrap_or(0),
            // Global bookkeeping events pin to region 0 (they would run on
            // the coordinating shard).
            NetEvent::Fault { .. }
            | NetEvent::Watchdog { .. }
            | NetEvent::TelemetrySample { .. } => 0,
        });
    }

    /// True if region-blocked scheduling is on.
    pub fn region_blocking(&self) -> bool {
        self.kernel.region_blocking()
    }

    /// Events dispatched per region since [`NocSim::enable_region_blocking`],
    /// indexed by region (see [`Grid::region_of`]).
    pub fn region_dispatch_counts(&self) -> &[u64] {
        self.kernel.region_dispatch_counts()
    }

    // ------------------------------------------------------------------
    // Faults and detection
    // ------------------------------------------------------------------

    /// Installs a deterministic fault schedule: each event is applied at
    /// its simulated time via a kernel event, so fault runs preserve the
    /// 1-vs-N-thread byte-identity contract. One schedule per simulation.
    ///
    /// # Panics
    ///
    /// Panics if a schedule is already installed, the schedule references
    /// off-grid elements, or an event time is already in the past.
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        let now = self.kernel.now();
        let times = self.kernel.model_mut().install_faults(schedule);
        for (idx, at) in times.into_iter().enumerate() {
            assert!(at >= now, "fault event {idx} at {at} is in the past");
            self.kernel.schedule(at.since(now), NetEvent::Fault { idx });
        }
    }

    /// Arms a stream watchdog on `conn`'s traffic `flow`: if a whole
    /// `timeout` passes without the flow's delivered count advancing, the
    /// connection is declared broken and surfaces in
    /// [`NocSim::take_broken`]. A sound timeout for a CBR stream of
    /// period `p` with worst-case latency bound `b` is `p + 2b` — a
    /// healthy stream's inter-delivery gap never exceeds `p + b`.
    pub fn arm_watchdog(
        &mut self,
        conn: mango_core::ConnectionId,
        flow: u32,
        timeout: SimDuration,
    ) {
        let idx = self.kernel.model_mut().add_watchdog(conn, flow, timeout);
        self.kernel.schedule(timeout, NetEvent::Watchdog { idx });
    }

    /// Drains the connections watchdogs have declared broken.
    pub fn take_broken(&mut self) -> Vec<BrokenConn> {
        self.kernel.model_mut().take_broken()
    }

    /// Silences every traffic source feeding `flow` (first step of
    /// tearing down a broken connection).
    pub fn stop_flow(&mut self, flow: u32) {
        self.kernel.model_mut().stop_sources_of_flow(flow);
    }

    // ------------------------------------------------------------------
    // Connections
    // ------------------------------------------------------------------

    /// Opens a GS connection from `src` to `dst`: reserves the VC
    /// sequence, programs the source router directly, and launches config
    /// packets to the remaining routers. The connection is usable once
    /// [`NocSim::connection_state`] reports [`ConnState::Open`] (drive the
    /// simulation with [`NocSim::wait_connections_settled`]).
    ///
    /// # Errors
    ///
    /// Propagates allocation/routing failures; nothing is reserved then.
    pub fn open_connection(
        &mut self,
        src: RouterId,
        dst: RouterId,
    ) -> Result<ConnectionId, ConnError> {
        let plan = self.kernel.model_mut().plan_open(src, dst)?;
        Ok(self.issue_open_plan(src, plan))
    }

    /// Opens a GS connection along an explicit link path (not necessarily
    /// XY — the QoS admission controller routes around congested links).
    /// Programming proceeds exactly as for [`NocSim::open_connection`];
    /// the config packets themselves still travel XY as BE traffic.
    ///
    /// # Errors
    ///
    /// Propagates allocation/path-validation failures; nothing is
    /// reserved then.
    pub fn open_connection_along(
        &mut self,
        src: RouterId,
        dst: RouterId,
        dirs: &[mango_core::Direction],
    ) -> Result<ConnectionId, ConnError> {
        let plan = self.kernel.model_mut().plan_open_along(src, dst, dirs)?;
        Ok(self.issue_open_plan(src, plan))
    }

    /// Applies an [`crate::conn::OpenPlan`]: program the source router,
    /// bind the NA interface, launch the config packets.
    fn issue_open_plan(&mut self, src: RouterId, plan: crate::conn::OpenPlan) -> ConnectionId {
        let net = self.kernel.model_mut();
        let idx = net.grid().index(src);
        net.node_mut(src).router.program(&plan.local_writes);
        net.na_mut().bind_tx(idx, plan.tx_iface, plan.tx_steer);
        let delay = net.inject_delay();
        let mut need_kick = false;
        for packet in plan.config_packets {
            if net.na_mut().enqueue_be(idx, packet) {
                need_kick = true;
            }
        }
        if need_kick {
            self.kernel
                .schedule(delay, NetEvent::NaBeInject { id: src });
        }
        plan.id
    }

    /// Closes an open connection (traffic must be drained).
    ///
    /// # Errors
    ///
    /// Fails if the connection is not open.
    pub fn close_connection(&mut self, id: ConnectionId) -> Result<(), ConnError> {
        let net = self.kernel.model_mut();
        let plan = net.plan_close(id)?;
        let record = net
            .connections()
            .get(id)
            .expect("connection exists")
            .clone();
        let src = record.src;
        let idx = net.grid().index(src);
        net.node_mut(src).router.program(&plan.local_writes);
        net.na_mut().unbind_tx(idx, plan.tx_iface);
        let delay = net.inject_delay();
        let mut need_kick = false;
        for packet in plan.config_packets {
            if net.na_mut().enqueue_be(idx, packet) {
                need_kick = true;
            }
        }
        if need_kick {
            self.kernel
                .schedule(delay, NetEvent::NaBeInject { id: src });
        }
        Ok(())
    }

    /// Forcibly tears down a connection without in-band traffic — the
    /// recovery path when a fault leaves part of the route unreachable
    /// or an in-band close times out. Applies the source-router clears,
    /// force-unbinds the NA interface (discarding stranded flits) and
    /// returns the plan describing what was released vs quarantined.
    ///
    /// # Errors
    ///
    /// Fails only if the connection is unknown.
    pub fn force_close_connection(
        &mut self,
        id: ConnectionId,
    ) -> Result<crate::conn::ForceClosePlan, ConnError> {
        let now = self.kernel.now();
        let net = self.kernel.model_mut();
        let plan = net.plan_force_close(id, now)?;
        let src = net.connections().get(id).expect("planned above").src;
        let idx = net.grid().index(src);
        if !plan.local_writes.is_empty() {
            net.node_mut(src).router.program(&plan.local_writes);
        }
        if let Some(iface) = plan.tx_iface {
            // Flits still queued on the interface are discarded by the
            // unbind — square the conservation ledger first (cold path).
            let discarded = net.na().gs_queue_flow_flits(idx, iface);
            net.na_mut().force_unbind_tx(idx, iface);
            net.debug_note_discarded(discarded);
        }
        Ok(plan)
    }

    /// The lifecycle state of a connection.
    pub fn connection_state(&self, id: ConnectionId) -> Option<ConnState> {
        self.network().connections().state(id)
    }

    /// Drives the simulation until every connection is `Open`/`Closed`.
    ///
    /// # Errors
    ///
    /// Fails if programming traffic stalls (returns the offending
    /// outcome).
    pub fn wait_connections_settled(&mut self) -> Result<(), String> {
        for _ in 0..10_000 {
            if self.network().connections().all_settled() {
                return Ok(());
            }
            let outcome = self.kernel.run_for(SimDuration::from_us(1));
            if matches!(outcome, RunOutcome::Stalled) {
                return Err("programming traffic stalled (deadlock?)".into());
            }
            if matches!(outcome, RunOutcome::Quiescent)
                && !self.network().connections().all_settled()
            {
                return Err("simulation drained but connections never settled".into());
            }
        }
        Err("connections did not settle within 10 ms".into())
    }

    // ------------------------------------------------------------------
    // Traffic
    // ------------------------------------------------------------------

    fn fork_rng(&mut self) -> SimRng {
        let stream = self.next_stream;
        self.next_stream += 1;
        self.rng.fork(stream)
    }

    /// Attaches a GS flit source to an **open** connection; returns its
    /// flow id.
    ///
    /// # Panics
    ///
    /// Panics if the connection is not open.
    pub fn add_gs_source(
        &mut self,
        conn: ConnectionId,
        pattern: TemporalSpec,
        name: impl Into<String>,
        window: EmitWindow,
    ) -> u32 {
        let state = self.connection_state(conn);
        assert_eq!(
            state,
            Some(ConnState::Open),
            "GS source needs an open connection, {conn} is {state:?}"
        );
        let record = self
            .network()
            .connections()
            .get(conn)
            .expect("state checked")
            .clone();
        let rng = self.fork_rng();
        let now = self.kernel.now();
        let net = self.kernel.model_mut();
        let flow = net.stats_mut().register_flow(name);
        let start = now + window.start_after.unwrap_or(SimDuration::ZERO);
        let idx = net.add_source(Source {
            kind: SourceKind::Gs {
                conn,
                router: record.src,
                iface: record.tx_iface,
            },
            pattern,
            state: PatternState::default(),
            flow,
            start,
            stop: window.stop_at,
            limit: window.limit,
            emitted: 0,
            rng,
            done: false,
        });
        self.kernel
            .schedule(start.since(now), NetEvent::SourceTick { idx });
        flow
    }

    /// Attaches a BE packet source with an explicit destination pool
    /// (picked uniformly per emission; repeat an entry to weight it) —
    /// the legacy surface, equivalent to [`SpatialPattern::FixedPool`]
    /// via [`NocSim::add_traffic_source`].
    pub fn add_be_source(
        &mut self,
        src: RouterId,
        dests: Vec<RouterId>,
        payload_words: usize,
        pattern: TemporalSpec,
        name: impl Into<String>,
        window: EmitWindow,
    ) -> u32 {
        self.add_traffic_source(
            src,
            SpatialPattern::FixedPool(dests),
            payload_words,
            pattern,
            name,
            window,
        )
    }

    /// Attaches a BE packet source whose destinations `spatial` computes
    /// per emission; returns its flow id.
    ///
    /// # Panics
    ///
    /// Panics if the pattern fails [`SpatialPattern::validate`] for this
    /// mesh (empty pool, off-mesh targets, transpose on a non-square
    /// mesh, ...).
    pub fn add_traffic_source(
        &mut self,
        src: RouterId,
        spatial: SpatialPattern,
        payload_words: usize,
        pattern: TemporalSpec,
        name: impl Into<String>,
        window: EmitWindow,
    ) -> u32 {
        spatial
            .validate(self.network().grid())
            .unwrap_or_else(|e| panic!("BE source at {src}: {e}"));
        let rng = self.fork_rng();
        let now = self.kernel.now();
        let net = self.kernel.model_mut();
        let flow = net.stats_mut().register_flow(name);
        let start = now + window.start_after.unwrap_or(SimDuration::ZERO);
        let idx = net.add_source(Source {
            kind: SourceKind::Be {
                router: src,
                spatial,
                payload_words,
            },
            pattern,
            state: PatternState::default(),
            flow,
            start,
            stop: window.stop_at,
            limit: window.limit,
            emitted: 0,
            rng,
            done: false,
        });
        self.kernel
            .schedule(start.since(now), NetEvent::SourceTick { idx });
        flow
    }

    /// Sends one BE packet immediately (outside any source).
    pub fn send_be(&mut self, src: RouterId, dst: RouterId, payload: &[u32], flow: Option<u32>) {
        let now = self.kernel.now();
        let net = self.kernel.model_mut();
        if net.enqueue_be_packet(src, dst, payload, flow, now) {
            let delay = net.inject_delay();
            self.kernel
                .schedule(delay, NetEvent::NaBeInject { id: src });
        }
    }

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------

    /// Starts the measurement window now.
    pub fn begin_measurement(&mut self) {
        let now = self.kernel.now();
        self.kernel.model_mut().stats_mut().begin_measurement(now);
    }

    /// Elapsed measurement window.
    ///
    /// # Panics
    ///
    /// Panics if measurement was never begun.
    pub fn measured_window(&self) -> SimDuration {
        let start = self
            .network()
            .stats()
            .measure_start()
            .expect("begin_measurement not called");
        self.now().since(start)
    }

    /// Statistics for a flow (owned snapshot).
    pub fn flow(&self, flow: u32) -> FlowStats {
        self.network().stats().flow(flow)
    }

    /// Delivered throughput of a flow over the measurement window, in
    /// Mflit/s (GS) or Mpackets/s (BE).
    pub fn flow_throughput_m(&self, flow: u32) -> f64 {
        self.flow(flow).throughput_mfps(self.measured_window())
    }

    /// The link capacity implied by the router timing, in Mflit/s —
    /// the paper's "port speed".
    pub fn link_capacity_m(&self) -> f64 {
        self.network().router_cfg().timing.link_cycle.as_rate_mhz()
    }

    /// Utilization of the directed link leaving `router` toward `dir`
    /// since simulation start: grants × link-cycle ÷ elapsed time.
    pub fn link_utilization(&self, router: RouterId, dir: mango_core::Direction) -> f64 {
        let elapsed = self.now().as_ps();
        if elapsed == 0 {
            return 0.0;
        }
        let stats = self.network().node(router).router.stats();
        let grants = stats.grants(dir.index());
        let cycle = self.network().router_cfg().timing.link_cycle.as_ps();
        (grants as f64 * cycle as f64) / elapsed as f64
    }

    /// A per-flow summary table (name, injected, delivered, throughput,
    /// latency) over the measurement window — ready to print.
    pub fn flow_summary(&self) -> mango_hw::Table {
        let window = self.measured_window();
        let mut t = mango_hw::Table::new(vec![
            "flow",
            "injected",
            "delivered",
            "M/s",
            "mean lat",
            "p99 lat",
        ]);
        for (_, f) in self.network().stats().flows() {
            t.add_row(vec![
                f.name.clone(),
                f.injected.to_string(),
                f.delivered.to_string(),
                format!("{:.1}", f.throughput_mfps(window)),
                f.latency.mean().map_or("-".into(), |d| d.to_string()),
                f.latency
                    .quantile(0.99)
                    .map_or("-".into(), |d| d.to_string()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_construction_and_time_flow() {
        let mut sim = NocSim::paper_mesh(2, 2, 42);
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.run_for(SimDuration::from_ns(100));
        assert_eq!(sim.now(), SimTime::from_ns(100));
    }

    #[test]
    fn open_connection_settles_via_programming_traffic() {
        let mut sim = NocSim::paper_mesh(3, 3, 1);
        let id = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(2, 1))
            .unwrap();
        assert_eq!(sim.connection_state(id), Some(ConnState::Opening));
        sim.wait_connections_settled().unwrap();
        assert_eq!(sim.connection_state(id), Some(ConnState::Open));
        // Each of the three remote routers consumed one config packet.
        let hops = sim.network().connections().get(id).unwrap().hops();
        assert_eq!(hops, 3);
        let programmed: u64 = sim
            .network()
            .nodes()
            .iter()
            .map(|n| n.router.stats().prog_packets)
            .sum();
        assert_eq!(programmed, 3);
        let errors: u64 = sim
            .network()
            .nodes()
            .iter()
            .map(|n| n.router.stats().prog_errors)
            .sum();
        assert_eq!(errors, 0);
    }

    #[test]
    fn gs_traffic_flows_end_to_end() {
        let mut sim = NocSim::paper_mesh(3, 3, 7);
        let id = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(2, 2))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        sim.begin_measurement();
        let flow = sim.add_gs_source(
            id,
            TemporalSpec::cbr(SimDuration::from_ns(10)),
            "test-gs",
            EmitWindow {
                limit: Some(100),
                ..Default::default()
            },
        );
        let outcome = sim.run_to_quiescence();
        assert_eq!(outcome, RunOutcome::Quiescent, "traffic must drain");
        let stats = sim.flow(flow);
        assert_eq!(stats.injected, 100);
        assert_eq!(stats.delivered, 100, "GS delivery is lossless");
        assert_eq!(stats.sequence_errors, 0, "GS delivery is in-order");
        assert!(stats.latency.count() > 0);
    }

    #[test]
    fn be_traffic_flows_end_to_end() {
        let mut sim = NocSim::paper_mesh(3, 3, 9);
        let flow = sim.add_be_source(
            RouterId::new(0, 0),
            vec![RouterId::new(2, 2)],
            4,
            TemporalSpec::cbr(SimDuration::from_ns(50)),
            "test-be",
            EmitWindow {
                limit: Some(50),
                ..Default::default()
            },
        );
        sim.begin_measurement();
        let outcome = sim.run_to_quiescence();
        assert_eq!(outcome, RunOutcome::Quiescent);
        let stats = sim.flow(flow);
        assert_eq!(stats.injected, 50);
        assert_eq!(stats.delivered, 50, "BE packets are lossless");
        assert_eq!(stats.sequence_errors, 0);
    }

    #[test]
    fn close_connection_releases_resources() {
        let mut sim = NocSim::paper_mesh(2, 2, 3);
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(1, 1);
        let id = sim.open_connection(src, dst).unwrap();
        sim.wait_connections_settled().unwrap();
        sim.close_connection(id).unwrap();
        sim.wait_connections_settled().unwrap();
        assert_eq!(sim.connection_state(id), Some(ConnState::Closed));
        // The VCs can be reused.
        let id2 = sim.open_connection(src, dst).unwrap();
        sim.wait_connections_settled().unwrap();
        assert_eq!(sim.connection_state(id2), Some(ConnState::Open));
    }

    /// Re-enabling telemetry after `take_telemetry` must not leave the
    /// previous activation's sampler chain running: a stale
    /// `TelemetrySample` still pending in the queue carries the old
    /// generation and must neither snapshot nor re-arm. Before the
    /// generation tag, the second activation sampled at double cadence
    /// (two chains) and the kernel profile double-counted sampler
    /// dispatches.
    #[test]
    fn telemetry_reenable_does_not_double_sample() {
        let mut sim = NocSim::paper_mesh(3, 3, 5);
        sim.add_be_source(
            RouterId::new(0, 0),
            vec![RouterId::new(2, 2)],
            4,
            TemporalSpec::cbr(SimDuration::from_ns(100)),
            "bg",
            EmitWindow::default(),
        );
        sim.enable_telemetry(TelemetryConfig {
            trace_flits: false,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_us(10));
        let first = sim.take_telemetry();
        assert!(!first.epochs.is_empty(), "first activation must sample");

        // The first activation's next sampler event is still pending.
        sim.enable_telemetry(TelemetryConfig {
            trace_flits: false,
            ..Default::default()
        });
        sim.run_for(SimDuration::from_us(10));
        let second = sim.take_telemetry();
        assert_eq!(
            second.epochs.len(),
            first.epochs.len(),
            "re-enabled telemetry must sample at single cadence (no stale chain)"
        );
    }

    /// Region blocking changes the scan order, never the results: an
    /// identically-seeded run with it on must reproduce every statistic
    /// of the plain run, and the per-region census must account for
    /// every dispatched event.
    #[test]
    fn region_blocking_preserves_results() {
        let run = |region_block: bool| {
            let mut sim = NocSim::paper_mesh(9, 9, 77);
            let flow = sim.add_be_source(
                RouterId::new(0, 0),
                vec![RouterId::new(8, 8), RouterId::new(8, 0)],
                4,
                TemporalSpec::cbr(SimDuration::from_ns(40)),
                "rb-probe",
                EmitWindow {
                    limit: Some(120),
                    ..Default::default()
                },
            );
            if region_block {
                sim.enable_region_blocking();
            }
            sim.begin_measurement();
            let outcome = sim.run_to_quiescence();
            assert_eq!(outcome, RunOutcome::Quiescent);
            let census: u64 = sim.region_dispatch_counts().iter().sum();
            (sim.flow(flow), sim.events_processed(), census, sim.now())
        };
        let (plain, plain_events, _, plain_end) = run(false);
        let (blocked, blocked_events, census, blocked_end) = run(true);
        assert_eq!(blocked.injected, plain.injected);
        assert_eq!(blocked.delivered, plain.delivered);
        assert_eq!(blocked.latency.mean(), plain.latency.mean());
        assert_eq!(blocked_events, plain_events, "same event trajectory");
        assert_eq!(blocked_end, plain_end, "same end time");
        assert_eq!(census, blocked_events, "census covers every dispatch");
        // A 9x9 mesh spans 2x2 tiles of 8x8 — four regions; a cross-mesh
        // route must charge dispatches to more than one of them.
        let counts = {
            let mut sim = NocSim::paper_mesh(9, 9, 77);
            sim.enable_region_blocking();
            assert!(sim.region_blocking());
            assert_eq!(sim.network().grid().regions(), 4);
            sim.send_be(RouterId::new(8, 8), RouterId::new(0, 0), &[1, 2], None);
            sim.run_to_quiescence();
            sim.region_dispatch_counts().to_vec()
        };
        let active = counts.iter().filter(|&&c| c > 0).count();
        assert!(active >= 2, "cross-mesh route spans regions: {counts:?}");
    }
}
