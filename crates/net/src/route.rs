//! Dimension-ordered (XY) routing (Sec. 5: "To avoid deadlocks XY-routing
//! is employed").
//!
//! XY routes move fully in X first, then in Y. On a mesh this admits no
//! cyclic channel dependencies, so BE worm-hole routing cannot deadlock and
//! GS connection paths never cross themselves. The axis legs themselves
//! come from [`Grid::axis_legs`], so the same code routes a torus (each
//! axis takes the shorter way round, ≤ ⌈k/2⌉ hops) and a chiplet mesh
//! (plain global XY — the D2D boundary affects delay, not direction)
//! without any coordinate arithmetic here.

use crate::topology::Grid;
use mango_core::{BeHeader, Direction, RouterId, MAX_BE_HOPS};

/// Errors computing a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Source and destination are the same router.
    SameRouter(RouterId),
    /// An endpoint lies outside the grid.
    OffGrid(RouterId),
    /// The route is longer than a BE header can encode.
    TooLong(usize),
    /// No path over surviving links connects the endpoints (fault
    /// partition).
    Unreachable {
        /// Route source.
        src: RouterId,
        /// Route destination.
        dst: RouterId,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::SameRouter(r) => write!(f, "source and destination are both {r}"),
            RouteError::OffGrid(r) => write!(f, "router {r} outside the grid"),
            RouteError::TooLong(n) => {
                write!(f, "route of {n} links exceeds the {MAX_BE_HOPS}-hop limit")
            }
            RouteError::Unreachable { src, dst } => {
                write!(f, "no surviving path from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Computes the XY route from `src` to `dst` as a list of link directions.
///
/// # Errors
///
/// Fails if the endpoints coincide or leave the grid.
pub fn xy_route(grid: &Grid, src: RouterId, dst: RouterId) -> Result<Vec<Direction>, RouteError> {
    if !grid.contains(src) {
        return Err(RouteError::OffGrid(src));
    }
    if !grid.contains(dst) {
        return Err(RouteError::OffGrid(dst));
    }
    if src == dst {
        return Err(RouteError::SameRouter(src));
    }
    let legs = grid.axis_legs(src, dst);
    let mut route = Vec::with_capacity(legs.iter().map(|&(_, n)| n as usize).sum());
    for (dir, hops) in legs {
        route.extend(std::iter::repeat_n(dir, hops as usize));
    }
    Ok(route)
}

/// The XY route's link count — the Manhattan distance on a mesh, the
/// shorter-way-round modular distance per axis on a torus — computed
/// without materializing the route.
///
/// # Errors
///
/// Fails if the endpoints coincide or leave the grid.
pub fn xy_len(grid: &Grid, src: RouterId, dst: RouterId) -> Result<usize, RouteError> {
    if !grid.contains(src) {
        return Err(RouteError::OffGrid(src));
    }
    if !grid.contains(dst) {
        return Err(RouteError::OffGrid(dst));
    }
    if src == dst {
        return Err(RouteError::SameRouter(src));
    }
    Ok(grid
        .axis_legs(src, dst)
        .iter()
        .map(|&(_, n)| n as usize)
        .sum())
}

/// Builds a BE source-routing header for the XY route from `src` to `dst`.
///
/// # Errors
///
/// Fails as [`xy_route`] does, or if the route exceeds the header's 15-hop
/// capacity.
pub fn xy_header(grid: &Grid, src: RouterId, dst: RouterId) -> Result<BeHeader, RouteError> {
    let links = xy_len(grid, src, dst)?;
    if links > MAX_BE_HOPS {
        return Err(RouteError::TooLong(links));
    }
    Ok(xy_segment_header(grid, src, dst, links))
}

/// The BE header for the first `links` links of the XY route from `src`
/// toward `dst`, built allocation-free — the per-packet hot path
/// (`BeHeader::from_route(&xy_route(..)[..links])` bit for bit, without
/// the route `Vec`).
///
/// Endpoints must be validated (distinct, on-grid) and `links` must be in
/// `1..=min(route length, MAX_BE_HOPS)`; use [`xy_len`] first.
pub fn xy_segment_header(grid: &Grid, src: RouterId, dst: RouterId, links: usize) -> BeHeader {
    let [(xdir, dx), (ydir, dy)] = grid.axis_legs(src, dst);
    let (dx, dy) = (dx as usize, dy as usize);
    debug_assert!((1..=(dx + dy).min(MAX_BE_HOPS)).contains(&links));
    // XY: the x-run precedes the y-run; the delivery code is the U-turn
    // against the last travel direction (see `BeHeader::from_route`).
    let x_links = links.min(dx);
    let y_links = links - x_links;
    let mut word: u32 = 0;
    for _ in 0..x_links {
        word = (word << 2) | xdir.index() as u32;
    }
    for _ in 0..y_links {
        word = (word << 2) | ydir.index() as u32;
    }
    let last = if y_links > 0 { ydir } else { xdir };
    word = (word << 2) | last.opposite().index() as u32;
    let used = 2 * (links as u32 + 1);
    BeHeader(word << (32 - used))
}

/// Computes a route from `src` to `dst` avoiding failed links.
///
/// On a healthy mesh this is exactly [`xy_route`] (bit-identical headers
/// downstream). With faults present it first checks whether the XY route
/// survives; if not, it falls back to a deterministic breadth-first search
/// over up-links (FIFO queue, [`Direction::ALL`] expansion order), which
/// finds a shortest surviving path independent of HashMap iteration order.
///
/// # Errors
///
/// Fails on degenerate endpoints as [`xy_route`] does, or with
/// [`RouteError::Unreachable`] when the fault set disconnects the pair.
pub fn route_avoiding(
    grid: &Grid,
    src: RouterId,
    dst: RouterId,
) -> Result<Vec<Direction>, RouteError> {
    if grid.all_links_up() {
        return xy_route(grid, src, dst);
    }
    let xy = xy_route(grid, src, dst)?;
    let mut cur = src;
    let mut xy_survives = true;
    for &dir in &xy {
        if !grid.link_up(cur, dir) {
            xy_survives = false;
            break;
        }
        cur = grid.neighbor(cur, dir).expect("XY route stays inside");
    }
    if xy_survives {
        return Ok(xy);
    }
    // BFS over surviving links: `from[i]` records the direction used to
    // first reach router-index `i`, and the predecessor is implied.
    let mut from: Vec<Option<Direction>> = vec![None; grid.len()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    while let Some(cur) = queue.pop_front() {
        if cur == dst {
            break;
        }
        for dir in Direction::ALL {
            if !grid.link_up(cur, dir) {
                continue;
            }
            let next = grid.neighbor(cur, dir).expect("link_up implies on-grid");
            if next == src || from[grid.index(next)].is_some() {
                continue;
            }
            from[grid.index(next)] = Some(dir);
            queue.push_back(next);
        }
    }
    if from[grid.index(dst)].is_none() {
        return Err(RouteError::Unreachable { src, dst });
    }
    // Walk predecessors back from the destination.
    let mut dirs = Vec::new();
    let mut cur = dst;
    while cur != src {
        let dir = from[grid.index(cur)].expect("reached routers have a parent");
        dirs.push(dir);
        cur = grid
            .neighbor(cur, dir.opposite())
            .expect("parent is on-grid");
    }
    dirs.reverse();
    Ok(dirs)
}

/// The routers an XY route visits, including both endpoints.
pub fn xy_path(grid: &Grid, src: RouterId, dst: RouterId) -> Result<Vec<RouterId>, RouteError> {
    let route = xy_route(grid, src, dst)?;
    let mut path = vec![src];
    let mut cur = src;
    for dir in route {
        cur = grid
            .neighbor(cur, dir)
            .expect("XY route stays inside the grid");
        path.push(cur);
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Direction::*;

    fn grid() -> Grid {
        Grid::new(4, 4)
    }

    #[test]
    fn straight_routes() {
        let g = grid();
        assert_eq!(
            xy_route(&g, RouterId::new(0, 0), RouterId::new(3, 0)).unwrap(),
            vec![East, East, East]
        );
        assert_eq!(
            xy_route(&g, RouterId::new(0, 3), RouterId::new(0, 0)).unwrap(),
            vec![North, North, North]
        );
    }

    #[test]
    fn l_shaped_route_is_x_then_y() {
        let g = grid();
        assert_eq!(
            xy_route(&g, RouterId::new(0, 0), RouterId::new(2, 2)).unwrap(),
            vec![East, East, South, South]
        );
        assert_eq!(
            xy_route(&g, RouterId::new(3, 3), RouterId::new(1, 1)).unwrap(),
            vec![West, West, North, North]
        );
    }

    #[test]
    fn path_lists_every_visited_router() {
        let g = grid();
        let path = xy_path(&g, RouterId::new(0, 0), RouterId::new(2, 1)).unwrap();
        assert_eq!(
            path,
            vec![
                RouterId::new(0, 0),
                RouterId::new(1, 0),
                RouterId::new(2, 0),
                RouterId::new(2, 1),
            ]
        );
    }

    #[test]
    fn route_length_is_manhattan_distance() {
        let g = Grid::new(8, 8);
        for (sx, sy, dx, dy) in [(0, 0, 7, 7), (3, 2, 3, 6), (5, 5, 0, 0)] {
            let src = RouterId::new(sx, sy);
            let dst = RouterId::new(dx, dy);
            let route = xy_route(&g, src, dst).unwrap();
            let manhattan = (sx as i16 - dx as i16).unsigned_abs() as usize
                + (sy as i16 - dy as i16).unsigned_abs() as usize;
            assert_eq!(route.len(), manhattan);
        }
    }

    #[test]
    fn errors_on_degenerate_inputs() {
        let g = grid();
        let r = RouterId::new(1, 1);
        assert_eq!(xy_route(&g, r, r), Err(RouteError::SameRouter(r)));
        let out = RouterId::new(9, 0);
        assert_eq!(xy_route(&g, out, r), Err(RouteError::OffGrid(out)));
        assert_eq!(xy_route(&g, r, out), Err(RouteError::OffGrid(out)));
    }

    #[test]
    fn header_matches_route() {
        let g = grid();
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(2, 0);
        let header = xy_header(&g, src, dst).unwrap();
        // First code must be East (injected locally).
        let (dest, _) = header.route(None);
        assert_eq!(dest, mango_core::BeDest::Net(East));
    }

    #[test]
    fn too_long_route_rejected() {
        let g = Grid::new(17, 2);
        let err = xy_header(&g, RouterId::new(0, 0), RouterId::new(16, 0));
        assert_eq!(err, Err(RouteError::TooLong(16)));
    }

    #[test]
    fn route_avoiding_matches_xy_on_healthy_mesh() {
        let g = Grid::new(5, 5);
        for src in g.ids() {
            for dst in g.ids() {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    route_avoiding(&g, src, dst).unwrap(),
                    xy_route(&g, src, dst).unwrap()
                );
            }
        }
    }

    #[test]
    fn route_avoiding_detours_around_a_dead_link() {
        let mut g = Grid::new(4, 1);
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(3, 0);
        g.fail_link(RouterId::new(1, 0), East);
        let dirs = route_avoiding(&g, src, dst);
        // A 4×1 strip has no detour: the cut partitions it.
        assert_eq!(dirs, Err(RouteError::Unreachable { src, dst }));

        let mut g = Grid::new(4, 2);
        g.fail_link(RouterId::new(1, 0), East);
        let dirs = route_avoiding(&g, src, dst).unwrap();
        // The detour drops one row and climbs back: still shortest
        // (5 links) and it never crosses the failed link.
        assert_eq!(dirs.len(), 5);
        let mut cur = src;
        for &d in &dirs {
            assert!(g.link_up(cur, d), "route crosses dead link {cur}->{d}");
            cur = g.neighbor(cur, d).unwrap();
        }
        assert_eq!(cur, dst);
    }

    #[test]
    fn route_avoiding_keeps_surviving_xy_route_under_unrelated_faults() {
        let mut g = Grid::new(4, 4);
        g.fail_link(RouterId::new(3, 3), North);
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(2, 1);
        assert_eq!(
            route_avoiding(&g, src, dst).unwrap(),
            xy_route(&g, src, dst).unwrap(),
            "unrelated fault must not perturb the route"
        );
    }

    #[test]
    fn route_avoiding_around_dead_router() {
        let mut g = Grid::new(3, 3);
        g.fail_router(RouterId::new(1, 0));
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(2, 0);
        let dirs = route_avoiding(&g, src, dst).unwrap();
        assert_eq!(dirs.len(), 4, "detour through row 1");
        let mut cur = src;
        for &d in &dirs {
            cur = g.neighbor(cur, d).unwrap();
            assert_ne!(cur, RouterId::new(1, 0), "route visits the dead router");
        }
        assert_eq!(cur, dst);
    }

    /// The allocation-free segment builder must reproduce the reference
    /// `BeHeader::from_route` encoding bit for bit, for every pair and
    /// every legal segment length of a mesh that exercises all four
    /// direction combinations and the hop cap.
    #[test]
    fn segment_header_matches_reference_for_all_pairs() {
        let g = Grid::new(9, 9);
        for src in g.ids() {
            for dst in g.ids() {
                if src == dst {
                    continue;
                }
                let route = xy_route(&g, src, dst).unwrap();
                assert_eq!(xy_len(&g, src, dst).unwrap(), route.len());
                for links in 1..=route.len().min(MAX_BE_HOPS) {
                    let want = BeHeader::from_route(&route[..links]).unwrap();
                    assert_eq!(
                        xy_segment_header(&g, src, dst, links),
                        want,
                        "{src}->{dst} truncated to {links}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_routes_wrap_the_short_way() {
        let g = Grid::from_spec(&crate::TopologySpec::torus(8, 8));
        // 0 → 7 east is 7 hops; the wrap west is 1.
        assert_eq!(
            xy_route(&g, RouterId::new(0, 2), RouterId::new(7, 2)).unwrap(),
            vec![West]
        );
        // Both axes wrap: (1,1) → (7,7) is 2 west + 2 north through the
        // seams, not 6+6 across the middle.
        assert_eq!(
            xy_route(&g, RouterId::new(1, 1), RouterId::new(7, 7)).unwrap(),
            vec![West, West, North, North]
        );
        assert_eq!(xy_len(&g, RouterId::new(1, 1), RouterId::new(7, 7)), Ok(4));
        // Routes stay in-topology and reach the destination.
        let mut cur = RouterId::new(1, 1);
        for d in xy_route(&g, cur, RouterId::new(7, 7)).unwrap() {
            cur = g.neighbor(cur, d).unwrap();
        }
        assert_eq!(cur, RouterId::new(7, 7));
    }

    #[test]
    fn torus_segment_headers_match_reference_for_all_pairs() {
        let g = Grid::from_spec(&crate::TopologySpec::torus(6, 5));
        for src in g.ids() {
            for dst in g.ids() {
                if src == dst {
                    continue;
                }
                let route = xy_route(&g, src, dst).unwrap();
                assert_eq!(xy_len(&g, src, dst).unwrap(), route.len());
                for links in 1..=route.len().min(MAX_BE_HOPS) {
                    let want = BeHeader::from_route(&route[..links]).unwrap();
                    assert_eq!(
                        xy_segment_header(&g, src, dst, links),
                        want,
                        "{src}->{dst} truncated to {links}"
                    );
                }
            }
        }
    }

    #[test]
    fn route_avoiding_detours_on_a_torus() {
        let mut g = Grid::from_spec(&crate::TopologySpec::torus(4, 4));
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(3, 0);
        // The short way is the single wrap link west; kill it.
        g.fail_link(src, West);
        let dirs = route_avoiding(&g, src, dst).unwrap();
        let mut cur = src;
        for &d in &dirs {
            assert!(g.link_up(cur, d), "route crosses dead link {cur}->{d}");
            cur = g.neighbor(cur, d).unwrap();
        }
        assert_eq!(cur, dst);
    }
}
