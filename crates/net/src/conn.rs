//! The connection manager: allocates VC sequences, generates the
//! programming traffic that opens GS connections, and tracks their
//! lifecycle.
//!
//! "In MANGO, a connection implements a logical point-to-point circuit
//! between two different local ports in the network, by reserving a
//! sequence of independently buffered VCs" (Sec. 3). Opening a connection
//! therefore means: pick an XY path, reserve one free GS VC on every link
//! of the path plus a local GS interface at each end, then program each
//! router on the path — the source router directly through its local
//! programming interface, the others with BE config packets that request
//! acknowledgments. The connection becomes [`ConnState::Open`] when every
//! ack has returned; only then may the source NA stream header-less flits.

use crate::relay::{ack_leg_header, build_segmented_packet, RelayTable};
use crate::route::{xy_route, RouteError};
use crate::topology::Grid;
use mango_core::{
    AckPlan, ConnectionId, Direction, Flit, GsBufferRef, ProgWrite, RouterId, Steer, UpstreamRef,
    VcId,
};
use mango_sim::SimTime;
use std::collections::HashMap;
use std::fmt;

/// Lifecycle of a GS connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Programming packets are in flight.
    Opening,
    /// All routers acknowledged: the circuit is live.
    Open,
    /// Teardown packets are in flight.
    Closing,
    /// Resources released.
    Closed,
}

/// Errors opening or closing connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// Route computation failed.
    Route(RouteError),
    /// No free GS VC on a link of the path.
    NoFreeVc(RouterId, Direction),
    /// No free GS TX interface at the source NA.
    NoFreeTxIface(RouterId),
    /// No free local GS interface at the destination router.
    NoFreeRxIface(RouterId),
    /// The connection is not in the required state.
    BadState(ConnectionId, ConnState),
    /// Unknown connection id.
    Unknown(ConnectionId),
    /// An explicit path is malformed (leaves the grid, revisits a router,
    /// or misses the destination).
    BadPath(String),
}

impl fmt::Display for ConnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnError::Route(e) => write!(f, "routing failed: {e}"),
            ConnError::NoFreeVc(r, d) => write!(f, "no free GS VC on link {r}->{d}"),
            ConnError::NoFreeTxIface(r) => write!(f, "no free GS TX interface at {r}"),
            ConnError::NoFreeRxIface(r) => write!(f, "no free local GS interface at {r}"),
            ConnError::BadState(id, s) => write!(f, "{id} is {s:?}"),
            ConnError::Unknown(id) => write!(f, "unknown connection {id}"),
            ConnError::BadPath(why) => write!(f, "bad explicit path: {why}"),
        }
    }
}

impl std::error::Error for ConnError {}

impl From<RouteError> for ConnError {
    fn from(e: RouteError) -> Self {
        ConnError::Route(e)
    }
}

/// A live connection record.
#[derive(Debug, Clone)]
pub struct ConnRecord {
    /// Connection id.
    pub id: ConnectionId,
    /// Source router (whose NA transmits).
    pub src: RouterId,
    /// Destination router (whose NA receives).
    pub dst: RouterId,
    /// Link directions along the path.
    pub dirs: Vec<Direction>,
    /// Reserved VC on each link.
    pub vcs: Vec<VcId>,
    /// Source NA TX interface.
    pub tx_iface: u8,
    /// Destination local GS interface.
    pub rx_iface: u8,
    /// Lifecycle state.
    pub state: ConnState,
    /// When the last opening ack returned (the circuit went live).
    pub opened_at: Option<SimTime>,
    /// When the last teardown ack returned (resources released).
    pub closed_at: Option<SimTime>,
    /// Ack tokens still outstanding, each with the path index (1-based
    /// hop count from the source) of the router that owes the ack — the
    /// mapping force-close uses to tell confirmed from unconfirmed hops.
    outstanding: Vec<(u16, u8)>,
}

impl ConnRecord {
    /// Number of links the connection traverses.
    pub fn hops(&self) -> usize {
        self.dirs.len()
    }

    /// The routers the connection visits, both endpoints included —
    /// reconstructed by walking the stored link directions (the path is
    /// not necessarily XY: the QoS admission controller may have routed
    /// around congested links).
    pub fn path(&self, grid: &Grid) -> Vec<RouterId> {
        walk_dirs(grid, self.src, &self.dirs).expect("stored connection path stays valid")
    }
}

/// Walks `dirs` from `src`, returning every visited router (endpoints
/// included).
///
/// # Errors
///
/// Fails if the walk is empty, leaves the grid, or revisits a router
/// (GS paths must be simple: each hop reserves a distinct VC buffer).
pub fn walk_dirs(
    grid: &Grid,
    src: RouterId,
    dirs: &[Direction],
) -> Result<Vec<RouterId>, ConnError> {
    if dirs.is_empty() {
        return Err(ConnError::BadPath("empty path".into()));
    }
    let mut path = Vec::with_capacity(dirs.len() + 1);
    path.push(src);
    let mut cur = src;
    for &d in dirs {
        cur = grid
            .neighbor(cur, d)
            .ok_or_else(|| ConnError::BadPath(format!("{cur} has no {d} neighbor")))?;
        if path.contains(&cur) {
            return Err(ConnError::BadPath(format!("path revisits {cur}")));
        }
        path.push(cur);
    }
    Ok(path)
}

/// Everything the caller must do to open a connection: apply the local
/// writes at the source router, bind the NA TX interface, and inject the
/// config packets from the source NA.
#[derive(Debug, Clone)]
pub struct OpenPlan {
    /// The new connection's id.
    pub id: ConnectionId,
    /// Writes to apply directly at the source router.
    pub local_writes: Vec<ProgWrite>,
    /// NA TX interface to bind.
    pub tx_iface: u8,
    /// First-hop steering for the NA TX interface.
    pub tx_steer: Steer,
    /// Config packets (flit sequences) to enqueue at the source NA.
    pub config_packets: Vec<Vec<Flit>>,
}

/// Everything the caller must do to close a connection.
#[derive(Debug, Clone)]
pub struct ClosePlan {
    /// The closing connection's id.
    pub id: ConnectionId,
    /// Writes to apply directly at the source router.
    pub local_writes: Vec<ProgWrite>,
    /// NA TX interface to unbind once the plan is issued.
    pub tx_iface: u8,
    /// Teardown packets to enqueue at the source NA.
    pub config_packets: Vec<Vec<Flit>>,
}

/// Result of a forced (out-of-band) teardown after a fault.
///
/// Unlike [`ClosePlan`], no config packets are generated: the network is
/// assumed unable to deliver them (or their acks) reliably. Resources
/// whose remote router state is known-clean are released for reuse;
/// resources whose router-table entries may still be programmed are
/// quarantined instead, so a later open can never double-program a
/// half-torn-down entry.
#[derive(Debug, Clone)]
pub struct ForceClosePlan {
    /// The force-closed connection's id.
    pub id: ConnectionId,
    /// Clears to apply directly at the source router (empty when a prior
    /// in-band close already wiped the source entries).
    pub local_writes: Vec<ProgWrite>,
    /// NA TX interface to force-unbind, if still bound.
    pub tx_iface: Option<u8>,
    /// Hop VCs returned to the free pool.
    pub released_hops: usize,
    /// Hop VCs moved to the quarantine mask.
    pub quarantined_hops: usize,
}

/// Allocates and tracks GS connections over one grid.
#[derive(Debug)]
pub struct ConnectionManager {
    gs_vcs: usize,
    local_ifaces: usize,
    next_id: u32,
    next_token: u16,
    conns: HashMap<ConnectionId, ConnRecord>,
    tokens: HashMap<u16, ConnectionId>,
    /// Bitmask of used VCs per directed link.
    vc_used: HashMap<(RouterId, Direction), u16>,
    /// Bitmask of used NA TX interfaces per router.
    tx_used: HashMap<RouterId, u16>,
    /// Bitmask of used local GS (delivery) interfaces per router.
    rx_used: HashMap<RouterId, u16>,
    /// VCs a forced teardown could not confirm clean: the router-table
    /// entries may still be programmed, so the allocator must skip them.
    /// Quarantined bits are *not* counted by [`Self::nothing_reserved`] —
    /// force-close returns the budget exactly and parks the hazard here.
    vc_quarantined: HashMap<(RouterId, Direction), u16>,
    /// Local GS interfaces whose delivery-side unlock entry may still be
    /// programmed after a forced teardown.
    rx_quarantined: HashMap<RouterId, u16>,
}

impl ConnectionManager {
    /// A manager for routers with `gs_vcs` VCs per link and `local_ifaces`
    /// local GS interfaces (paper: 7 and 4).
    pub fn new(gs_vcs: usize, local_ifaces: usize) -> Self {
        ConnectionManager {
            gs_vcs,
            local_ifaces,
            next_id: 0,
            next_token: 1,
            conns: HashMap::new(),
            tokens: HashMap::new(),
            vc_used: HashMap::new(),
            tx_used: HashMap::new(),
            rx_used: HashMap::new(),
            vc_quarantined: HashMap::new(),
            rx_quarantined: HashMap::new(),
        }
    }

    /// The record for `id`.
    pub fn get(&self, id: ConnectionId) -> Option<&ConnRecord> {
        self.conns.get(&id)
    }

    /// The state of `id`, if known.
    pub fn state(&self, id: ConnectionId) -> Option<ConnState> {
        self.conns.get(&id).map(|c| c.state)
    }

    /// True if every connection is `Open` or `Closed` (no programming in
    /// flight).
    pub fn all_settled(&self) -> bool {
        self.conns
            .values()
            .all(|c| matches!(c.state, ConnState::Open | ConnState::Closed))
    }

    /// True when no VC, TX-interface or RX-interface budget is reserved
    /// — every allocation has been returned. Together with every
    /// connection reading `Closed`, this is the teardown leak-check
    /// invariant: the manager is back in its initial-state budget
    /// position.
    pub fn nothing_reserved(&self) -> bool {
        self.vc_used.values().all(|m| *m == 0)
            && self.tx_used.values().all(|m| *m == 0)
            && self.rx_used.values().all(|m| *m == 0)
    }

    /// Ids of all connections.
    pub fn ids(&self) -> Vec<ConnectionId> {
        let mut v: Vec<_> = self.conns.keys().copied().collect();
        v.sort_by_key(|c| c.0);
        v
    }

    fn alloc_bit(mask: &mut u16, limit: usize) -> Option<u8> {
        for bit in 0..limit {
            if *mask & (1 << bit) == 0 {
                *mask |= 1 << bit;
                return Some(bit as u8);
            }
        }
        None
    }

    /// Plans the opening of a connection from `src` to `dst` along the
    /// default XY route, reserving all resources.
    ///
    /// # Errors
    ///
    /// Fails (reserving nothing) if routing fails or any VC/interface on
    /// the path is exhausted.
    pub fn open(
        &mut self,
        grid: &Grid,
        relays: &mut RelayTable,
        src: RouterId,
        dst: RouterId,
    ) -> Result<OpenPlan, ConnError> {
        let dirs = xy_route(grid, src, dst)?;
        self.open_along(grid, relays, src, dst, &dirs)
    }

    /// Plans the opening of a connection along an explicit link path.
    ///
    /// Any simple (router-disjoint) path is legal for GS traffic: every
    /// hop reserves an independently buffered VC, so GS streams cannot
    /// deadlock regardless of route shape (Sec. 3) — only BE worm-hole
    /// routing needs the XY restriction. The programming packets that set
    /// the path up are BE and still travel XY, independent of `dirs`.
    ///
    /// # Errors
    ///
    /// Fails (reserving nothing) if the path is malformed, does not end
    /// at `dst`, or any VC/interface along it is exhausted.
    pub fn open_along(
        &mut self,
        grid: &Grid,
        relays: &mut RelayTable,
        src: RouterId,
        dst: RouterId,
        dirs: &[Direction],
    ) -> Result<OpenPlan, ConnError> {
        let path = walk_dirs(grid, src, dirs)?;
        if *path.last().expect("walk includes src") != dst {
            return Err(ConnError::BadPath(format!(
                "path from {src} ends at {} not {dst}",
                path.last().expect("walk includes src")
            )));
        }
        let dirs = dirs.to_vec();
        let hops = dirs.len();

        // Dry-run allocation: find everything before committing.
        // Quarantined bits count as taken here but are tracked apart
        // from the used masks, so only the fresh bit is committed below.
        let mut vcs = Vec::with_capacity(hops);
        for (i, &d) in dirs.iter().enumerate() {
            let mut mask = self.vc_used.get(&(path[i], d)).copied().unwrap_or(0)
                | self.vc_quarantined.get(&(path[i], d)).copied().unwrap_or(0);
            match Self::alloc_bit(&mut mask, self.gs_vcs) {
                Some(vc) => vcs.push(VcId(vc)),
                None => return Err(ConnError::NoFreeVc(path[i], d)),
            }
        }
        let mut tx_mask = self.tx_used.get(&src).copied().unwrap_or(0);
        let Some(tx_iface) = Self::alloc_bit(&mut tx_mask, self.local_ifaces) else {
            return Err(ConnError::NoFreeTxIface(src));
        };
        let mut rx_mask = self.rx_used.get(&dst).copied().unwrap_or(0)
            | self.rx_quarantined.get(&dst).copied().unwrap_or(0);
        let Some(rx_iface) = Self::alloc_bit(&mut rx_mask, self.local_ifaces) else {
            return Err(ConnError::NoFreeRxIface(dst));
        };

        // Commit allocations.
        for (i, &d) in dirs.iter().enumerate() {
            *self.vc_used.entry((path[i], d)).or_insert(0) |= 1 << vcs[i].0;
        }
        self.tx_used.insert(src, tx_mask);
        *self.rx_used.entry(dst).or_insert(0) |= 1 << rx_iface;

        let id = ConnectionId(self.next_id);
        self.next_id += 1;

        // Steering target inside router path[i] (the buffer hop i lands in).
        let target = |i: usize| -> Steer {
            if i == hops {
                Steer::LocalGs { iface: rx_iface }
            } else {
                Steer::GsBuffer {
                    dir: dirs[i],
                    vc: vcs[i],
                }
            }
        };

        // Source router: programmed directly via its local port.
        let local_writes = vec![
            ProgWrite::SetUnlock {
                buffer: GsBufferRef::Net {
                    dir: dirs[0],
                    vc: vcs[0],
                },
                upstream: UpstreamRef::Na { iface: tx_iface },
            },
            ProgWrite::SetSteer {
                dir: dirs[0],
                vc: vcs[0],
                steer: target(1),
            },
        ];

        // Remote routers path[1..=hops]: config packets with acks.
        let mut config_packets = Vec::new();
        let mut outstanding = Vec::new();
        for (i, &router) in path.iter().enumerate().take(hops + 1).skip(1) {
            let mut writes = Vec::new();
            let buffer = if i == hops {
                GsBufferRef::Local { iface: rx_iface }
            } else {
                GsBufferRef::Net {
                    dir: dirs[i],
                    vc: vcs[i],
                }
            };
            writes.push(ProgWrite::SetUnlock {
                buffer,
                upstream: UpstreamRef::Link {
                    in_dir: dirs[i - 1].opposite(),
                    wire: vcs[i - 1],
                },
            });
            if i < hops {
                writes.push(ProgWrite::SetSteer {
                    dir: dirs[i],
                    vc: vcs[i],
                    steer: target(i + 1),
                });
            }
            let token = self.next_token;
            self.next_token = self.next_token.wrapping_add(1).max(1);
            outstanding.push((token, i as u8));
            self.tokens.insert(token, id);
            let plan = AckPlan {
                token,
                return_header: ack_leg_header(grid, router, src)
                    .expect("path routers differ from src"),
            };
            let payload = mango_core::prog::encode_payload(&writes, Some(plan));
            config_packets.push(build_segmented_packet(
                grid, relays, src, router, &payload, true,
            )?);
        }

        let tx_steer = Steer::GsBuffer {
            dir: dirs[0],
            vc: vcs[0],
        };
        let state = if outstanding.is_empty() {
            ConnState::Open
        } else {
            ConnState::Opening
        };
        self.conns.insert(
            id,
            ConnRecord {
                id,
                src,
                dst,
                dirs,
                vcs,
                tx_iface,
                rx_iface,
                state,
                opened_at: None,
                closed_at: None,
                outstanding,
            },
        );

        Ok(OpenPlan {
            id,
            local_writes,
            tx_iface,
            tx_steer,
            config_packets,
        })
    }

    /// Plans the teardown of an open connection. Traffic must be drained
    /// first; the caller unbinds the NA TX interface.
    ///
    /// # Errors
    ///
    /// Fails if the connection is unknown or not open.
    pub fn close(
        &mut self,
        grid: &Grid,
        relays: &mut RelayTable,
        id: ConnectionId,
    ) -> Result<ClosePlan, ConnError> {
        let conn = self.conns.get_mut(&id).ok_or(ConnError::Unknown(id))?;
        if conn.state != ConnState::Open {
            return Err(ConnError::BadState(id, conn.state));
        }
        let hops = conn.hops();
        let path = conn.path(grid);

        let local_writes = vec![
            ProgWrite::ClearUnlock {
                buffer: GsBufferRef::Net {
                    dir: conn.dirs[0],
                    vc: conn.vcs[0],
                },
            },
            ProgWrite::ClearSteer {
                dir: conn.dirs[0],
                vc: conn.vcs[0],
            },
        ];

        let mut config_packets = Vec::new();
        let mut outstanding = Vec::new();
        for (i, &router) in path.iter().enumerate().take(hops + 1).skip(1) {
            let mut writes = Vec::new();
            let buffer = if i == hops {
                GsBufferRef::Local {
                    iface: conn.rx_iface,
                }
            } else {
                GsBufferRef::Net {
                    dir: conn.dirs[i],
                    vc: conn.vcs[i],
                }
            };
            writes.push(ProgWrite::ClearUnlock { buffer });
            if i < hops {
                writes.push(ProgWrite::ClearSteer {
                    dir: conn.dirs[i],
                    vc: conn.vcs[i],
                });
            }
            let token = self.next_token;
            self.next_token = self.next_token.wrapping_add(1).max(1);
            outstanding.push((token, i as u8));
            self.tokens.insert(token, id);
            let plan = AckPlan {
                token,
                return_header: ack_leg_header(grid, router, conn.src)?,
            };
            let payload = mango_core::prog::encode_payload(&writes, Some(plan));
            config_packets.push(build_segmented_packet(
                grid, relays, conn.src, router, &payload, true,
            )?);
        }

        conn.state = if outstanding.is_empty() {
            ConnState::Closed
        } else {
            ConnState::Closing
        };
        conn.outstanding = outstanding;
        let tx_iface = conn.tx_iface;
        if conn.state == ConnState::Closed {
            self.release(id, grid);
        }
        Ok(ClosePlan {
            id,
            local_writes,
            tx_iface,
            config_packets,
        })
    }

    /// True if `token` belongs to an outstanding programming request.
    pub fn known_token(&self, token: u16) -> bool {
        self.tokens.contains_key(&token)
    }

    /// The source router an outstanding token's acknowledgment must reach
    /// (acks delivered at intermediate relay NAs are re-launched toward
    /// it).
    pub fn token_src(&self, token: u16) -> Option<RouterId> {
        self.tokens
            .get(&token)
            .and_then(|id| self.conns.get(id))
            .map(|c| c.src)
    }

    /// Processes an acknowledgment token at simulation time `now`;
    /// returns the connection and its new state if the token completed a
    /// transition (the transition time is recorded in the record's
    /// `opened_at`/`closed_at`).
    pub fn on_ack(
        &mut self,
        token: u16,
        grid: &Grid,
        now: SimTime,
    ) -> Option<(ConnectionId, ConnState)> {
        let id = self.tokens.remove(&token)?;
        let conn = self.conns.get_mut(&id).expect("token maps to connection");
        conn.outstanding.retain(|&(t, _)| t != token);
        if !conn.outstanding.is_empty() {
            return None;
        }
        match conn.state {
            ConnState::Opening => {
                conn.state = ConnState::Open;
                conn.opened_at = Some(now);
                Some((id, ConnState::Open))
            }
            ConnState::Closing => {
                conn.state = ConnState::Closed;
                conn.closed_at = Some(now);
                self.release(id, grid);
                Some((id, ConnState::Closed))
            }
            s => panic!("ack for connection in state {s:?}"),
        }
    }

    /// Marks one VC on a directed link unusable without charging it to
    /// any connection's budget — used when a stuck-at fault wedges the
    /// buffer itself rather than a teardown leaving it programmed.
    pub fn quarantine_vc(&mut self, router: RouterId, dir: Direction, vc: VcId) {
        *self.vc_quarantined.entry((router, dir)).or_insert(0) |= 1 << vc.0;
    }

    /// Number of quarantined resources (hop VCs plus RX interfaces).
    /// Zero after a run means every teardown completed cleanly in-band.
    pub fn quarantined_count(&self) -> usize {
        self.vc_quarantined
            .values()
            .chain(self.rx_quarantined.values())
            .map(|m| m.count_ones() as usize)
            .sum()
    }

    /// Forcibly tears down a connection without any in-band traffic, for
    /// use when the network can no longer deliver teardown packets (or
    /// their acks) to every router on the path.
    ///
    /// Every budget bit the connection held is returned exactly — after
    /// force-closing all connections, [`Self::nothing_reserved`] holds.
    /// Hops whose router-table entries are not known clean move to the
    /// quarantine masks instead of the free pool:
    ///
    /// - interrupted while `Closing`: hops whose clear-ack returned are
    ///   clean (released); hops still owing an ack are quarantined;
    /// - interrupted while `Opening` or `Open`: every remote hop may
    ///   hold programmed entries (no clears were ever sent), so all are
    ///   quarantined; hop 0 lives at the source router, which the caller
    ///   wipes via the returned `local_writes`, so it is released.
    ///
    /// Idempotent: force-closing a `Closed` connection is a no-op.
    ///
    /// # Errors
    ///
    /// Fails only if `id` is unknown.
    pub fn force_close(
        &mut self,
        grid: &Grid,
        id: ConnectionId,
        now: SimTime,
    ) -> Result<ForceClosePlan, ConnError> {
        let conn = self.conns.get(&id).ok_or(ConnError::Unknown(id))?;
        if conn.state == ConnState::Closed {
            return Ok(ForceClosePlan {
                id,
                local_writes: Vec::new(),
                tx_iface: None,
                released_hops: 0,
                quarantined_hops: 0,
            });
        }
        let prior = conn.state;
        let path = conn.path(grid);
        let hops = conn.hops();
        let dirs = conn.dirs.clone();
        let vcs = conn.vcs.clone();
        let (src, dst) = (conn.src, conn.dst);
        let (tx_iface, rx_iface) = (conn.tx_iface, conn.rx_iface);
        let outstanding = conn.outstanding.clone();

        // Late acks for dropped tokens must be ignored, not processed.
        for &(t, _) in &outstanding {
            self.tokens.remove(&t);
        }
        let unconfirmed: std::collections::HashSet<u8> =
            outstanding.iter().map(|&(_, i)| i).collect();

        // Hop i's steer/unlock entries live at router path[i]; its VC bit
        // is keyed (path[i], dirs[i]).
        let mut released = 0usize;
        let mut quarantined = 0usize;
        for i in 0..hops {
            let key = (path[i], dirs[i]);
            let bit = 1u16 << vcs[i].0;
            let used = self.vc_used.get_mut(&key).expect("allocated link mask");
            *used &= !bit;
            let clean = match prior {
                ConnState::Closing => !unconfirmed.contains(&(i as u8)),
                _ => i == 0,
            };
            if clean {
                released += 1;
            } else {
                *self.vc_quarantined.entry(key).or_insert(0) |= bit;
                quarantined += 1;
            }
        }

        // The TX interface is local to the source NA and always
        // reclaimable; the RX interface's unlock entry sits at the
        // destination and follows the same clean/quarantine rule.
        if let Some(mask) = self.tx_used.get_mut(&src) {
            *mask &= !(1 << tx_iface);
        }
        if let Some(mask) = self.rx_used.get_mut(&dst) {
            *mask &= !(1 << rx_iface);
        }
        let rx_clean = prior == ConnState::Closing && !unconfirmed.contains(&(hops as u8));
        if !rx_clean {
            *self.rx_quarantined.entry(dst).or_insert(0) |= 1 << rx_iface;
        }

        // A prior in-band close already wiped the source entries and
        // surrendered the TX binding; otherwise hand both to the caller.
        let (local_writes, unbind_tx) = if prior == ConnState::Closing {
            (Vec::new(), None)
        } else {
            (
                vec![
                    ProgWrite::ClearUnlock {
                        buffer: GsBufferRef::Net {
                            dir: dirs[0],
                            vc: vcs[0],
                        },
                    },
                    ProgWrite::ClearSteer {
                        dir: dirs[0],
                        vc: vcs[0],
                    },
                ],
                Some(tx_iface),
            )
        };

        let conn = self.conns.get_mut(&id).expect("record checked above");
        conn.state = ConnState::Closed;
        conn.closed_at = Some(now);
        conn.outstanding.clear();

        Ok(ForceClosePlan {
            id,
            local_writes,
            tx_iface: unbind_tx,
            released_hops: released,
            quarantined_hops: quarantined,
        })
    }

    fn release(&mut self, id: ConnectionId, grid: &Grid) {
        let conn = self.conns.get(&id).expect("releasing unknown connection");
        let path = conn.path(grid);
        for (i, &d) in conn.dirs.iter().enumerate() {
            let mask = self
                .vc_used
                .get_mut(&(path[i], d))
                .expect("allocated link mask");
            *mask &= !(1 << conn.vcs[i].0);
        }
        if let Some(mask) = self.tx_used.get_mut(&conn.src) {
            *mask &= !(1 << conn.tx_iface);
        }
        if let Some(mask) = self.rx_used.get_mut(&conn.dst) {
            *mask &= !(1 << conn.rx_iface);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Grid, ConnectionManager, RelayTable) {
        (
            Grid::new(4, 4),
            ConnectionManager::new(7, 4),
            RelayTable::new(),
        )
    }

    #[test]
    fn open_reserves_distinct_vcs_per_link() {
        let (g, mut m, mut rl) = setup();
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(2, 0);
        let p1 = m.open(&g, &mut rl, src, dst).unwrap();
        let p2 = m.open(&g, &mut rl, src, dst).unwrap();
        let c1 = m.get(p1.id).unwrap();
        let c2 = m.get(p2.id).unwrap();
        assert_ne!(c1.vcs[0], c2.vcs[0], "same link must use distinct VCs");
        assert_ne!(c1.tx_iface, c2.tx_iface);
        assert_ne!(c1.rx_iface, c2.rx_iface);
    }

    #[test]
    fn open_plan_has_writes_and_packets_per_remote_router() {
        let (g, mut m, mut rl) = setup();
        let plan = m
            .open(&g, &mut rl, RouterId::new(0, 0), RouterId::new(2, 1))
            .unwrap();
        // 3 links → routers (1,0), (2,0), (2,1) are remote.
        assert_eq!(plan.config_packets.len(), 3);
        assert_eq!(plan.local_writes.len(), 2);
        assert!(matches!(plan.tx_steer, Steer::GsBuffer { .. }));
        assert_eq!(m.state(plan.id), Some(ConnState::Opening));
        // All packets are config-marked.
        for pkt in &plan.config_packets {
            assert!(pkt.iter().all(|f| f.be_vc));
            assert!(pkt.last().unwrap().eop);
        }
    }

    #[test]
    fn vc_exhaustion_reported() {
        let (g, mut m, mut rl) = setup();
        // 7 GS VCs per link but only 4 local interfaces: interface
        // exhaustion hits first from a single source.
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(1, 0);
        for _ in 0..4 {
            m.open(&g, &mut rl, src, dst).unwrap();
        }
        let err = m.open(&g, &mut rl, src, dst).unwrap_err();
        assert_eq!(err, ConnError::NoFreeTxIface(src));

        // Different sources can still exhaust the shared link VCs.
        let mut m = ConnectionManager::new(2, 4);
        m.open(&g, &mut rl, src, dst).unwrap();
        m.open(&g, &mut rl, src, dst).unwrap();
        let err = m.open(&g, &mut rl, src, dst).unwrap_err();
        assert_eq!(err, ConnError::NoFreeVc(src, Direction::East));
    }

    #[test]
    fn acks_drive_opening_to_open() {
        let (g, mut m, mut rl) = setup();
        let plan = m
            .open(&g, &mut rl, RouterId::new(0, 0), RouterId::new(2, 0))
            .unwrap();
        let conn = m.get(plan.id).unwrap();
        let tokens: Vec<u16> = conn.outstanding.iter().map(|&(t, _)| t).collect();
        assert_eq!(tokens.len(), 2);
        assert_eq!(
            m.on_ack(tokens[0], &g, SimTime::ZERO),
            None,
            "still one outstanding"
        );
        assert_eq!(
            m.on_ack(tokens[1], &g, SimTime::ZERO),
            Some((plan.id, ConnState::Open))
        );
        assert!(m.all_settled());
        assert_eq!(
            m.on_ack(tokens[1], &g, SimTime::ZERO),
            None,
            "duplicate ack ignored"
        );
    }

    #[test]
    fn close_releases_resources_for_reuse() {
        let (g, mut m, mut rl) = setup();
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(1, 0);
        let plan = m.open(&g, &mut rl, src, dst).unwrap();
        let tokens = m.get(plan.id).unwrap().outstanding.clone();
        for (t, _) in tokens {
            m.on_ack(t, &g, SimTime::ZERO);
        }
        let close = m.close(&g, &mut rl, plan.id).unwrap();
        assert_eq!(close.config_packets.len(), 1);
        let tokens = m.get(plan.id).unwrap().outstanding.clone();
        for (t, _) in tokens {
            m.on_ack(t, &g, SimTime::ZERO);
        }
        assert_eq!(m.state(plan.id), Some(ConnState::Closed));
        // Everything freed: 4 more connections fit again.
        for _ in 0..4 {
            m.open(&g, &mut rl, src, dst).unwrap();
        }
    }

    #[test]
    fn close_requires_open_state() {
        let (g, mut m, mut rl) = setup();
        let plan = m
            .open(&g, &mut rl, RouterId::new(0, 0), RouterId::new(3, 3))
            .unwrap();
        let err = m.close(&g, &mut rl, plan.id).unwrap_err();
        assert!(matches!(err, ConnError::BadState(_, ConnState::Opening)));
        assert!(matches!(
            m.close(&g, &mut rl, ConnectionId(999)),
            Err(ConnError::Unknown(_))
        ));
    }

    #[test]
    fn same_router_connection_rejected() {
        let (g, mut m, mut rl) = setup();
        let r = RouterId::new(1, 1);
        assert!(matches!(
            m.open(&g, &mut rl, r, r),
            Err(ConnError::Route(RouteError::SameRouter(_)))
        ));
    }

    #[test]
    fn force_close_open_connection_quarantines_remote_hops() {
        let (g, mut m, mut rl) = setup();
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(2, 0);
        let plan = m.open(&g, &mut rl, src, dst).unwrap();
        for (t, _) in m.get(plan.id).unwrap().outstanding.clone() {
            m.on_ack(t, &g, SimTime::ZERO);
        }
        let fc = m.force_close(&g, plan.id, SimTime::ZERO).unwrap();
        assert_eq!(m.state(plan.id), Some(ConnState::Closed));
        // Hop 0 cleared via local writes; hop 1 (router (1,0)) still
        // holds programmed entries and is quarantined, as is the RX
        // interface at the destination.
        assert_eq!(fc.released_hops, 1);
        assert_eq!(fc.quarantined_hops, 1);
        assert_eq!(fc.local_writes.len(), 2);
        assert_eq!(fc.tx_iface, Some(plan.tx_iface));
        assert_eq!(m.quarantined_count(), 2);
        assert!(m.nothing_reserved(), "budgets returned exactly");
        // Idempotent.
        let again = m.force_close(&g, plan.id, SimTime::ZERO).unwrap();
        assert_eq!(again.released_hops + again.quarantined_hops, 0);
        assert!(again.local_writes.is_empty());
    }

    #[test]
    fn force_close_mid_closing_releases_acked_hops_only() {
        let (g, mut m, mut rl) = setup();
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(2, 0);
        let plan = m.open(&g, &mut rl, src, dst).unwrap();
        for (t, _) in m.get(plan.id).unwrap().outstanding.clone() {
            m.on_ack(t, &g, SimTime::ZERO);
        }
        m.close(&g, &mut rl, plan.id).unwrap();
        // Ack only router (1,0) (path index 1); the destination's clear
        // ack never arrives.
        let pending = m.get(plan.id).unwrap().outstanding.clone();
        let (t, idx) = pending.iter().copied().find(|&(_, i)| i == 1).unwrap();
        assert_eq!(idx, 1);
        m.on_ack(t, &g, SimTime::ZERO);
        let fc = m.force_close(&g, plan.id, SimTime::ZERO).unwrap();
        // Hops 0 and 1 confirmed clean; the destination hop and RX
        // interface are quarantined.
        assert_eq!(fc.released_hops, 2);
        assert_eq!(fc.quarantined_hops, 0);
        assert!(fc.local_writes.is_empty(), "in-band close wiped source");
        assert_eq!(fc.tx_iface, None);
        assert_eq!(m.quarantined_count(), 1, "only the RX iface");
        assert!(m.nothing_reserved());
        // A late ack for the dropped token is ignored.
        let (late, _) = pending.iter().copied().find(|&(_, i)| i == 2).unwrap();
        assert!(!m.known_token(late));
        assert_eq!(m.on_ack(late, &g, SimTime::ZERO), None);
    }

    #[test]
    fn quarantined_vcs_are_skipped_by_the_allocator() {
        let (g, mut m, mut rl) = setup();
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(1, 0);
        m.quarantine_vc(src, Direction::East, VcId(0));
        let plan = m.open(&g, &mut rl, src, dst).unwrap();
        assert_eq!(
            m.get(plan.id).unwrap().vcs[0],
            VcId(1),
            "allocator must skip the quarantined VC 0"
        );
        // Quarantine shrinks the pool: with 2 VCs and one quarantined,
        // a second connection on the same link is refused.
        let mut m2 = ConnectionManager::new(2, 4);
        m2.quarantine_vc(src, Direction::East, VcId(1));
        m2.open(&g, &mut rl, src, dst).unwrap();
        assert_eq!(
            m2.open(&g, &mut rl, src, dst).unwrap_err(),
            ConnError::NoFreeVc(src, Direction::East)
        );
    }

    #[test]
    fn failed_open_reserves_nothing() {
        let (g, _, mut rl) = setup();
        let mut m = ConnectionManager::new(1, 4);
        let a = RouterId::new(0, 0);
        let b = RouterId::new(2, 0);
        m.open(&g, &mut rl, a, b).unwrap();
        // Second connection fails on the first link...
        assert!(m.open(&g, &mut rl, a, b).is_err());
        // ...but a disjoint path is unaffected.
        m.open(&g, &mut rl, RouterId::new(0, 1), RouterId::new(2, 1))
            .unwrap();
    }
}
