//! MANGO: a reproduction of *"A Router Architecture for Connection-
//! Oriented Service Guarantees in the MANGO Clockless Network-on-Chip"*
//! (Bjerregaard & Sparsø, DATE 2005) as a deterministic discrete-event
//! model with calibrated hardware cost models.
//!
//! This umbrella crate re-exports the complete public API:
//!
//! * [`sim`] — the deterministic simulation kernel;
//! * [`hw`] — area/timing/power models (Table 1, port speeds);
//! * [`core`] — the MANGO router: non-blocking switching, share-based VC
//!   control, pluggable link arbiters, BE source routing, programming
//!   interface;
//! * [`net`] — mesh topologies, network adapters, connection management,
//!   traffic generation, measurement and the [`net::NocSim`] harness;
//! * [`qos`] — analytical guarantee bounds, admission control and
//!   connection-churn workloads;
//! * [`apps`] — application serving: task graphs, placement optimizers
//!   scoring through the admission controller, and whole-app lifecycle
//!   (arrive → place → admit → open → stream → close);
//! * [`baseline`] — the Fig. 3 blocking router and the ÆTHEREAL-style
//!   TDM comparator.
//!
//! # Quickstart
//!
//! ```
//! use mango::net::{EmitWindow, NocSim, Pattern};
//! use mango::core::RouterId;
//! use mango::sim::SimDuration;
//!
//! // A 4×4 mesh of the paper's routers.
//! let mut sim = NocSim::paper_mesh(4, 4, 0xC0FFEE);
//!
//! // Open a GS connection and wait for the BE programming packets and
//! // their acknowledgments to settle.
//! let conn = sim
//!     .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
//!     .expect("free VCs on the path");
//! sim.wait_connections_settled().expect("programming completes");
//!
//! // Stream 1000 flits at 100 Mflit/s and check lossless in-order
//! // delivery.
//! sim.begin_measurement();
//! let flow = sim.add_gs_source(
//!     conn,
//!     Pattern::cbr(SimDuration::from_ns(10)),
//!     "quickstart",
//!     EmitWindow { limit: Some(1000), ..Default::default() },
//! );
//! sim.run_to_quiescence();
//! let stats = sim.flow(flow);
//! assert_eq!(stats.delivered, 1000);
//! assert_eq!(stats.sequence_errors, 0);
//! ```

#![warn(missing_docs)]

pub use mango_apps as apps;
pub use mango_baseline as baseline;
pub use mango_core as core;
pub use mango_hw as hw;
pub use mango_net as net;
pub use mango_qos as qos;
pub use mango_sim as sim;
pub use mango_telemetry as telemetry;
