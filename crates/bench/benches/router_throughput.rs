//! Criterion bench of simulator performance on a saturated link: how
//! much wall-clock the event model spends per simulated microsecond with
//! all 7 GS VCs of one link backlogged.

use criterion::{criterion_group, criterion_main, Criterion};
use mango::sim::SimDuration;
use mango_bench::{funnel_sim, measure_gs};
use std::hint::black_box;

fn bench_saturated_link(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_throughput");
    group.sample_size(10);
    group.bench_function("saturated_link_100us", |b| {
        b.iter(|| {
            let (mut sim, tagged) = funnel_sim(6, 4242);
            let run = measure_gs(&mut sim, tagged, SimDuration::from_ns(3), 2, 100);
            black_box((run.throughput_m, sim.events_processed()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_saturated_link);
criterion_main!(benches);
