//! Criterion microbenchmarks of the link arbiters — the paper's point
//! that simple circuits implement GS (Sec. 2: "the circuits needed to
//! implement GS also turn out to be simpler than those needed for BE")
//! shows up as arbiter decision cost.

use criterion::{criterion_group, criterion_main, Criterion};
use mango::core::{ArbiterKind, LinkSlot, VcId};
use std::hint::black_box;

fn ready_sets() -> Vec<Vec<LinkSlot>> {
    let full: Vec<LinkSlot> = (0..7)
        .map(|i| LinkSlot::Gs(VcId(i)))
        .chain([LinkSlot::Be])
        .collect();
    vec![
        vec![LinkSlot::Gs(VcId(3))],
        vec![LinkSlot::Gs(VcId(0)), LinkSlot::Gs(VcId(6)), LinkSlot::Be],
        full,
    ]
}

fn bench_arbiters(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiter_select");
    for kind in [
        ArbiterKind::FairShare,
        ArbiterKind::StaticPriority,
        ArbiterKind::Alg { age_bound: 7 },
    ] {
        let mut arb = kind.build(7);
        let sets = ready_sets();
        group.bench_function(arb.name(), |b| {
            let mut i = 0;
            b.iter(|| {
                let ready = &sets[i % sets.len()];
                i += 1;
                black_box(arb.select(black_box(ready)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arbiters);
criterion_main!(benches);
