//! Criterion microbenchmarks of the simulation event queue — the single
//! hottest structure in the simulator (every flit hop is at least one
//! push/pop pair).
//!
//! The workload is hold-model churn, the access pattern the kernel
//! produces: pop the earliest event, then schedule a successor a bounded
//! delay into the future, keeping the pending-set size constant. Three
//! delay distributions cover the simulator's regimes:
//!
//! * `hop` — 100 ps – 3 ns deltas, the router/link hop latencies that
//!   dominate a running mesh (all within the calendar wheel span);
//! * `mixed` — 90% hop deltas plus 10% far deltas up to 2 µs, the
//!   pattern produced by source ticks and watchdogs (exercises the
//!   overflow heap);
//! * `ties` — 50% zero-delay reschedules, stressing same-instant
//!   FIFO ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mango::sim::{EventQueue, SimDuration, SimRng, SimTime};
use std::hint::black_box;

#[derive(Clone, Copy)]
enum Dist {
    Hop,
    Mixed,
    Ties,
}

impl Dist {
    fn name(self) -> &'static str {
        match self {
            Dist::Hop => "hop",
            Dist::Mixed => "mixed",
            Dist::Ties => "ties",
        }
    }

    fn delta(self, rng: &mut SimRng) -> SimDuration {
        let ps = match self {
            Dist::Hop => 100 + rng.gen_range(2900),
            Dist::Mixed => {
                if rng.gen_range(10) == 0 {
                    50_000 + rng.gen_range(1_950_000)
                } else {
                    100 + rng.gen_range(2900)
                }
            }
            Dist::Ties => {
                if rng.gen_range(2) == 0 {
                    0
                } else {
                    100 + rng.gen_range(2900)
                }
            }
        };
        SimDuration::from_ps(ps)
    }
}

fn prefill(pending: usize, dist: Dist, rng: &mut SimRng) -> EventQueue<u64> {
    let mut q = EventQueue::new();
    let mut t = SimTime::from_ps(1);
    for i in 0..pending {
        q.push(t, i as u64);
        t += dist.delta(rng);
    }
    q
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &pending in &[256usize, 4096, 32768] {
        for dist in [Dist::Hop, Dist::Mixed, Dist::Ties] {
            let id = BenchmarkId::new(format!("churn_{}", dist.name()), pending);
            group.bench_with_input(id, &pending, |b, &pending| {
                let mut rng = SimRng::new(0xE0E0);
                let mut q = prefill(pending, dist, &mut rng);
                b.iter(|| {
                    let (t, v) = q.pop().expect("hold model never drains");
                    q.push(t + dist.delta(&mut rng), v);
                    black_box(t)
                })
            });
        }
    }
    // Build-and-drain: the pattern of short experiment set-ups.
    group.bench_function("fill_then_drain_8192", |b| {
        let mut rng = SimRng::new(0xD12A);
        b.iter(|| {
            let mut q = prefill(8192, Dist::Mixed, &mut rng);
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    // The same set-up pattern through the bulk build path
    // (`EventQueue::extend`): one pre-sorted run instead of 8192
    // overflow-heap detours.
    group.bench_function("bulk_fill_then_drain_8192", |b| {
        let mut rng = SimRng::new(0xD12A);
        b.iter(|| {
            let mut t = SimTime::from_ps(1);
            let batch: Vec<(SimTime, u64)> = (0..8192u64)
                .map(|i| {
                    let e = (t, i);
                    t += Dist::Mixed.delta(&mut rng);
                    e
                })
                .collect();
            let mut q = EventQueue::new();
            q.extend(batch);
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
