//! Criterion microbenchmarks of the BE path: header building/rotation and
//! steering encode/decode — the per-flit hardware operations of Sec. 5.

use criterion::{criterion_group, criterion_main, Criterion};
use mango::core::{BeHeader, Direction, Port, Steer, VcId};
use std::hint::black_box;

fn bench_be_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("be_routing");

    let route: Vec<Direction> = (0..15)
        .map(|i| [Direction::East, Direction::South][i % 2])
        .collect();
    group.bench_function("header_from_15_hop_route", |b| {
        b.iter(|| black_box(BeHeader::from_route(black_box(&route)).unwrap()))
    });

    let header = BeHeader::from_route(&route).unwrap();
    group.bench_function("route_decode_and_rotate", |b| {
        b.iter(|| black_box(black_box(header).route(Some(Direction::West))))
    });

    group.bench_function("steer_pack_unpack", |b| {
        let target = Steer::GsBuffer {
            dir: Direction::South,
            vc: VcId(5),
        };
        let arrival = Port::Net(Direction::West);
        b.iter(|| {
            let code = black_box(target).pack(arrival).unwrap();
            black_box(Steer::unpack(code, arrival).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_be_routing);
criterion_main!(benches);
