//! Criterion bench of whole-network simulation: a 4×4 mesh with mixed
//! GS + BE traffic, measuring wall-clock per simulated window.

use criterion::{criterion_group, criterion_main, Criterion};
use mango::sim::SimDuration;
use mango_bench::mixed_mesh_4x4;
use std::hint::black_box;

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_sim");
    group.sample_size(10);
    group.bench_function("mixed_4x4_50us", |b| {
        b.iter(|| {
            let mut sim = mixed_mesh_4x4(99);
            sim.run_for(SimDuration::from_us(50));
            black_box(sim.events_processed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
