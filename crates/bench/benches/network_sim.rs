//! Criterion bench of whole-network simulation: a 4×4 mesh with mixed
//! GS + BE traffic, measuring wall-clock per simulated window.

use criterion::{criterion_group, criterion_main, Criterion};
use mango::core::RouterId;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;
use mango_bench::add_be_background;
use std::hint::black_box;

fn build_loaded_mesh(seed: u64) -> NocSim {
    let mut sim = NocSim::paper_mesh(4, 4, seed);
    for (s, d) in [
        ((0, 0), (3, 3)),
        ((3, 0), (0, 3)),
        ((1, 1), (2, 2)),
        ((2, 1), (1, 2)),
    ] {
        let c = sim
            .open_connection(RouterId::new(s.0, s.1), RouterId::new(d.0, d.1))
            .expect("fits");
        sim.wait_connections_settled().expect("settles");
        sim.add_gs_source(
            c,
            Pattern::cbr(SimDuration::from_ns(12)),
            "gs",
            EmitWindow::default(),
        );
    }
    add_be_background(&mut sim, SimDuration::from_ns(300));
    sim
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_sim");
    group.sample_size(10);
    group.bench_function("mixed_4x4_50us", |b| {
        b.iter(|| {
            let mut sim = build_loaded_mesh(99);
            sim.run_for(SimDuration::from_us(50));
            black_box(sim.events_processed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
