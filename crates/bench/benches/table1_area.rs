//! Criterion bench for the Table 1 area model: cost of evaluating the
//! per-module breakdown across design points (the model is used inside
//! design-space sweeps, so evaluation speed matters), plus a correctness
//! gate that the paper's numbers still reproduce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mango::hw::area::{AreaModel, RouterParams, Table1};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Gate: the calibration must hold before we bother timing it.
    let breakdown = AreaModel::cmos_120nm().breakdown(&RouterParams::paper());
    let err = (breakdown.total_mm2() - Table1::PAPER_TOTAL).abs() / Table1::PAPER_TOTAL;
    assert!(err < 0.02, "Table 1 calibration drifted: {err:.4}");

    let model = AreaModel::cmos_120nm();
    let mut group = c.benchmark_group("table1_area");
    group.bench_function("paper_design_point", |b| {
        let params = RouterParams::paper();
        b.iter(|| black_box(model.breakdown(black_box(&params))))
    });
    for v in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("sweep_vcs", v), &v, |b, &v| {
            let mut params = RouterParams::paper();
            params.gs_vcs = v;
            b.iter(|| black_box(model.breakdown(black_box(&params))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
