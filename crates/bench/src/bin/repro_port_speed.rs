//! Reproduces the **port-speed results of Sec. 6**: 515 MHz per port under
//! worst-case timing (1.08 V / 125 °C), 795 MHz typical — first from the
//! bundled-data timing model, then measured in simulation by saturating a
//! link and counting delivered flits.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_port_speed`

use mango::core::{RouterConfig, RouterId};
use mango::hw::{Corner, Table, TimingModel};
use mango::net::{EmitWindow, Grid, NaConfig, Network, NocSim, Pattern};
use mango::sim::SimDuration;

/// Measures aggregate link throughput with all 7 GS VCs saturated.
fn measured_port_speed(cfg: RouterConfig) -> f64 {
    let net = Network::new(Grid::new(3, 4), cfg, NaConfig::paper());
    let mut sim = NocSim::new(net, 42);
    // 7 connections funnel through link (1,0)→E.
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(2, 1)),
        (RouterId::new(0, 0), RouterId::new(2, 2)),
        (RouterId::new(0, 0), RouterId::new(2, 3)),
        (RouterId::new(1, 0), RouterId::new(2, 0)),
        (RouterId::new(1, 0), RouterId::new(2, 1)),
        (RouterId::new(1, 0), RouterId::new(2, 2)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("fits"))
        .collect();
    sim.wait_connections_settled().expect("settles");
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(3)),
                format!("sat-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(100));
    flows.iter().map(|f| sim.flow_throughput_m(*f)).sum()
}

fn main() {
    let model = TimingModel::cmos_120nm();
    println!("Port speed (Sec. 6): model, simulation and paper\n");
    let mut t = Table::new(vec![
        "Corner",
        "Model [MHz]",
        "Simulated [Mflit/s]",
        "Paper [MHz]",
    ]);
    for (corner, cfg, paper) in [
        (Corner::Typical, RouterConfig::paper(), 795.0),
        (Corner::WorstCase, RouterConfig::paper_worst_case(), 515.0),
    ] {
        let model_mhz = model.port_speed_mhz(corner);
        let simulated = measured_port_speed(cfg);
        t.add_row(vec![
            corner.name().to_string(),
            format!("{model_mhz:.1}"),
            format!("{simulated:.1}"),
            format!("{paper:.0}"),
        ]);
        assert!(
            (model_mhz - paper).abs() < 1.0,
            "timing model drifted from the paper at {corner:?}"
        );
        assert!(
            (simulated - model_mhz).abs() / model_mhz < 0.02,
            "simulation disagrees with the timing model at {corner:?}: {simulated:.1}"
        );
    }
    print!("{t}");
    println!("\nsimulated = aggregate of 7 saturated GS VCs on one link (full utilization)");
}
