//! Reproduces the headline property of **Fig. 8 / Sec. 3**: GS
//! connections are logically independent of best-effort traffic. A GS
//! stream's throughput and latency stay flat as BE injection sweeps from
//! idle to saturation, while BE latency degrades.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_fig8_gs_vs_be`

use mango::core::RouterId;
use mango::hw::Table;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

struct Row {
    label: String,
    gs_tput: f64,
    gs_mean: f64,
    gs_max: f64,
    be_mean: f64,
}

fn run(be_gap_ns: Option<u64>) -> Row {
    let mut sim = NocSim::paper_mesh(4, 4, 55);
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
        .expect("VCs free");
    sim.wait_connections_settled().expect("settles");
    let mut be_flows = Vec::new();
    if let Some(gap) = be_gap_ns {
        let all: Vec<RouterId> = sim.network().grid().ids().collect();
        for node in all.clone() {
            let dests: Vec<_> = all.iter().copied().filter(|d| *d != node).collect();
            be_flows.push(sim.add_be_source(
                node,
                dests,
                4,
                Pattern::poisson(SimDuration::from_ns(gap)),
                format!("be-{node}"),
                EmitWindow::default(),
            ));
        }
    }
    sim.run_for(SimDuration::from_us(20));
    sim.begin_measurement();
    let gs = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(12)), // ~83 Mf/s, inside the floor
        "gs",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(150));
    let s = sim.flow(gs);
    let be_mean = if be_flows.is_empty() {
        0.0
    } else {
        let (sum, n) = be_flows
            .iter()
            .filter_map(|f| sim.flow(*f).latency.mean())
            .fold((0.0, 0u32), |(s, n), d| (s + d.as_ns_f64(), n + 1));
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    };
    Row {
        label: match be_gap_ns {
            None => "BE idle".into(),
            Some(g) => format!("BE 1 pkt/{g} ns/node"),
        },
        gs_tput: sim.flow_throughput_m(gs),
        gs_mean: s.latency.mean().unwrap().as_ns_f64(),
        gs_max: s.latency.max().unwrap().as_ns_f64(),
        be_mean,
    }
}

fn main() {
    println!("GS independence from BE load (Fig. 8): 6-hop GS stream at 83 Mflit/s\n");
    let mut t = Table::new(vec![
        "BE background",
        "GS [Mflit/s]",
        "GS mean [ns]",
        "GS max [ns]",
        "BE mean [ns]",
    ]);
    let rows: Vec<Row> = [None, Some(1000), Some(300), Some(100), Some(50)]
        .into_iter()
        .map(run)
        .collect();
    for r in &rows {
        t.add_row(vec![
            r.label.clone(),
            format!("{:.2}", r.gs_tput),
            format!("{:.2}", r.gs_mean),
            format!("{:.2}", r.gs_max),
            if r.be_mean > 0.0 {
                format!("{:.1}", r.be_mean)
            } else {
                "-".into()
            },
        ]);
    }
    print!("{t}");
    let base = &rows[0];
    let worst = rows.last().unwrap();
    println!(
        "\nGS throughput shift at BE saturation: {:+.2}% (must be ~0)",
        (worst.gs_tput - base.gs_tput) / base.gs_tput * 100.0
    );
    println!(
        "GS mean latency shift: {:+.1} ns (bounded arbitration interference only)",
        worst.gs_mean - base.gs_mean
    );
    println!(
        "BE mean latency degradation: {:.1}x",
        worst.be_mean / rows[1].be_mean
    );
    assert!((worst.gs_tput - base.gs_tput).abs() / base.gs_tput < 0.01);
}
