//! Reproduces the headline property of **Fig. 8 / Sec. 3**: GS
//! connections are logically independent of best-effort traffic. A GS
//! stream's throughput and latency stay flat as BE injection sweeps from
//! idle to saturation, while BE latency degrades.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_fig8_gs_vs_be`
//! `[-- --threads N] [--smoke] [--csv PATH] [--json PATH] [--telemetry-out DIR]`
//!
//! The BE load axis is a [`SweepSpec`] grid: one GS connection
//! (0,0)→(3,3) at 12 ns CBR against a BE background dimension, fanned
//! out across worker threads and merged in job order.
//! `--telemetry-out DIR` additionally collects per-job telemetry
//! (metrics, epoch time series, flit-journey Chrome trace) and writes
//! it into DIR — byte-identical for any `--threads` value.

use mango::hw::Table;
use mango::net::{ScenarioMetrics, TelemetryConfig};
use mango::telemetry::TelemetryReport;
use mango_sweep::{
    run_parallel, write_csv, write_json, write_telemetry_dir, RuntimeInfo, SweepArgs, SweepRecord,
    SweepSpec,
};
use std::time::Instant;

struct Row {
    label: String,
    gs_tput: f64,
    gs_mean: f64,
    gs_max: f64,
    be_mean: f64,
}

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    let be_gaps: &[Option<u64>] = if args.smoke {
        &[None, Some(300), Some(50)]
    } else {
        &[None, Some(1000), Some(300), Some(100), Some(50)]
    };
    // The historical Fig. 8 experiment as a declarative grid: the
    // auto-placed first connection of a 4×4 mesh is exactly the
    // (0,0)→(3,3) six-hop stream the figure tags.
    let spec = SweepSpec {
        meshes: vec![(4, 4)],
        topologies: Vec::new(),
        gs_conns: vec![1],
        be_gaps_ns: be_gaps.to_vec(),
        patterns: vec![mango::net::PatternKind::Uniform],
        gs_periods_ns: vec![12], // ~83 Mf/s, inside the floor
        measures_us: vec![150],
        seeds: vec![55],
        warmup_us: 20,
        payload_words: 4,
        mix_gap_into_seed: false,
    };
    let jobs = spec.expand();
    let start = Instant::now();
    let telemetry = args.telemetry_out.is_some();
    let results: Vec<(ScenarioMetrics, Option<TelemetryReport>)> =
        run_parallel(&jobs, args.threads, |_, job| {
            let scenario = spec.scenario(job);
            if !telemetry {
                return (scenario.run(), None);
            }
            let mut prepared = scenario.prepare();
            prepared
                .sim_mut()
                .enable_telemetry(TelemetryConfig::default());
            prepared.start_measurement();
            let outcome = prepared.run_to_bound();
            let report = prepared.sim_mut().take_telemetry();
            (prepared.finish(outcome), Some(report))
        });
    let wall = start.elapsed().as_secs_f64();
    if let Some(dir) = &args.telemetry_out {
        let reports: Vec<TelemetryReport> = results.iter().filter_map(|(_, r)| r.clone()).collect();
        write_telemetry_dir(dir, &reports).expect("write telemetry");
        println!("telemetry written to {}\n", dir.display());
    }
    let metrics: Vec<ScenarioMetrics> = results.into_iter().map(|(m, _)| m).collect();

    println!("GS independence from BE load (Fig. 8): 6-hop GS stream at 83 Mflit/s\n");
    let rows: Vec<Row> = jobs
        .iter()
        .zip(&metrics)
        .map(|(job, m)| Row {
            label: match job.be_gap_ns {
                None => "BE idle".into(),
                Some(g) => format!("BE 1 pkt/{g} ns/node"),
            },
            gs_tput: m.gs(0).throughput_m,
            gs_mean: m.gs(0).mean_ns.expect("GS latency recorded"),
            gs_max: m.gs(0).max_ns.expect("GS latency recorded"),
            be_mean: m.be_mean_of_means_ns(),
        })
        .collect();
    let mut t = Table::new(vec![
        "BE background",
        "GS [Mflit/s]",
        "GS mean [ns]",
        "GS max [ns]",
        "BE mean [ns]",
    ]);
    for r in &rows {
        t.add_row(vec![
            r.label.clone(),
            format!("{:.2}", r.gs_tput),
            format!("{:.2}", r.gs_mean),
            format!("{:.2}", r.gs_max),
            if r.be_mean > 0.0 {
                format!("{:.1}", r.be_mean)
            } else {
                "-".into()
            },
        ]);
    }
    print!("{t}");

    if args.csv.is_some() || args.json.is_some() {
        let records: Vec<SweepRecord> = jobs
            .iter()
            .zip(&metrics)
            .map(|(job, m)| SweepRecord::measure(job.clone(), m))
            .collect();
        if let Some(path) = &args.csv {
            write_csv(path, &records).expect("write CSV");
        }
        if let Some(path) = &args.json {
            let runtime = RuntimeInfo {
                threads: args.threads,
                wall_seconds: wall,
                total_events: metrics.iter().map(|m| m.events).sum(),
            };
            write_json(path, &records, &runtime).expect("write JSON");
        }
    }

    let base = &rows[0];
    let worst = rows.last().unwrap();
    println!(
        "\nGS throughput shift at BE saturation: {:+.2}% (must be ~0)",
        (worst.gs_tput - base.gs_tput) / base.gs_tput * 100.0
    );
    println!(
        "GS mean latency shift: {:+.1} ns (bounded arbitration interference only)",
        worst.gs_mean - base.gs_mean
    );
    println!(
        "BE mean latency degradation: {:.1}x",
        worst.be_mean / rows[1].be_mean
    );
    assert!((worst.gs_tput - base.gs_tput).abs() / base.gs_tput < 0.01);
}
