//! Ablation of the paper's depth-1 buffer choice (Sec. 4.4: "To keep the
//! area down, our output buffers are a single flit deep plus one flit in
//! the unsharebox. This is enough to ensure the fair-share scheme to
//! function"): under share-based VC control the sharebox — not the
//! buffer — is the per-VC serialization point, so deeper buffers change
//! **neither** a lone VC's throughput **nor** the contended fair-share
//! floor, while costing substantial area. Depth 1 is simply optimal,
//! which is the paper's point made quantitative.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_buffer_depth`

use mango::core::{RouterConfig, RouterId};
use mango::hw::area::{AreaModel, RouterParams};
use mango::hw::Table;
use mango::net::experiment::gs_depth_throughput;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

/// Fair-share floor of one VC among 7 saturated ones, at `depth`.
fn floor_at_depth(depth: usize) -> f64 {
    let mut cfg = RouterConfig::paper();
    cfg.params.buffer_depth = depth;
    let mut sim = NocSim::mesh_with(8, 1, cfg, 31);
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(3, 0)),
        (RouterId::new(0, 0), RouterId::new(4, 0)),
        (RouterId::new(0, 0), RouterId::new(5, 0)),
        (RouterId::new(1, 0), RouterId::new(6, 0)),
        (RouterId::new(1, 0), RouterId::new(7, 0)),
        (RouterId::new(1, 0), RouterId::new(3, 0)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("fits"))
        .collect();
    sim.wait_connections_settled().expect("settles");
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(3)),
                format!("d-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(100));
    flows
        .iter()
        .map(|f| sim.flow_throughput_m(*f))
        .fold(f64::MAX, f64::min)
}

fn main() {
    let model = AreaModel::cmos_120nm();
    println!("Buffer-depth ablation (paper: depth 1 + unsharebox)\n");
    let mut t = Table::new(vec![
        "depth",
        "single-VC [Mflit/s]",
        "min floor of 7 [Mflit/s]",
        "VC buffers [mm2]",
        "router total [mm2]",
    ]);
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8] {
        let solo = gs_depth_throughput(depth, 5);
        let floor = floor_at_depth(depth);
        let mut p = RouterParams::paper();
        p.buffer_depth = depth;
        let b = model.breakdown(&p);
        t.add_row(vec![
            depth.to_string(),
            format!("{solo:.1}"),
            format!("{floor:.1}"),
            format!("{:.3}", b.vc_buffers / 1e6),
            format!("{:.3}", b.total_mm2()),
        ]);
        rows.push((depth, solo, floor, b.total_mm2()));
    }
    print!("{t}");

    let d1 = &rows[0];
    let d8 = &rows[3];
    println!(
        "\ndepth 8 changes single-VC throughput by {:+.1}% and the contended floor by {:+.1}%,",
        (d8.1 / d1.1 - 1.0) * 100.0,
        (d8.2 / d1.2 - 1.0) * 100.0
    );
    println!(
        "while costing {:+.0}% router area: the sharebox (one flit per VC in the media until \
         unlock) is the serialization point, so depth 1 is optimal — the paper's choice.",
        (d8.3 / d1.3 - 1.0) * 100.0
    );
    assert!(
        (d8.1 - d1.1).abs() / d1.1 < 0.02,
        "share-based control pins a lone VC regardless of depth: {:.1} vs {:.1}",
        d1.1,
        d8.1
    );
    assert!(
        (d8.2 - d1.2).abs() / d1.2 < 0.05,
        "floors must be depth-insensitive: {:.1} vs {:.1}",
        d1.2,
        d8.2
    );
    assert!(d8.3 > d1.3 * 1.5, "deep buffers must cost real area");
}
