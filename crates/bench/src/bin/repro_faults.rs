//! Robustness experiment: **deterministic fault injection and
//! self-healing GS connections** — what happens to the paper's hard
//! guarantees when the fabric itself breaks. An 8×8 mesh carries
//! watchdogged GS connections over BE background; mid-measurement the
//! fault schedule kills the middle link of the tagged GS route. The
//! recovery engine detects the break, tears the victim down (in-band
//! where routable, force-close with quarantine where not), re-admits it
//! over surviving links with capped exponential backoff, and
//! re-validates the stream against the recomputed degraded-path bound.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_faults`
//! `[-- --threads N] [--smoke] [--list] [--csv PATH] [--telemetry-out DIR]`
//!
//! `--telemetry-out DIR` runs the targeted experiment with the telemetry
//! sink active and writes its metrics, epoch time series and Chrome
//! trace into DIR. Per-flit journey tracing is left off here — the
//! interesting track is the *connection recovery* one, where each
//! managed connection's detect → teardown → re-admit → reopen lifecycle
//! appears as instants plus one closing `recover` span (load
//! `trace.json` at <https://ui.perfetto.dev>).
//!
//! Everything on stdout is deterministic and byte-diffed in CI against
//! `tests/golden/repro_faults_smoke.txt` at 1 and 4 worker threads;
//! wall-clock rates go to stderr. The binary asserts the degraded
//! guarantee contract: every healed connection's observed worst case
//! stays under its recomputed bound.

use mango::core::{Direction, RouterConfig, RouterId};
use mango::hw::Table;
use mango::net::TelemetryConfig;
use mango::net::{
    FaultKind, FaultSchedule, MeasureBound, NaConfig, PatternKind, TemporalSpec, TrafficSpec,
};
use mango::qos::{report_for, RecoveryOutcome, RecoverySpec};
use mango::sim::{SimDuration, SimTime};
use mango_sweep::{
    fault_summary_table, run_fault_sweep, write_fault_csv, write_telemetry_dir, FaultSweepSpec,
    SweepArgs,
};
use std::time::Instant;

const SIDE: u8 = 8;
const GS_PERIOD_NS: u64 = 15;

/// The targeted single-fault experiment: managed GS connections along
/// the mesh rows, BE background, and a fail-stop fault on the middle
/// link of the tagged (row 0) connection's XY path.
fn targeted_spec(smoke: bool) -> RecoverySpec {
    let window_us = if smoke { 60 } else { 120 };
    let mut spec = RecoverySpec::mesh(SIDE, SIDE, 11);
    spec.base.measure = MeasureBound::For(SimDuration::from_us(window_us));
    spec.base = spec.base.traffic(
        TrafficSpec::new(
            PatternKind::Uniform.spatial(SIDE, SIDE),
            TemporalSpec::poisson(SimDuration::from_ns(1000)),
        )
        .payload(4)
        .named("bg-"),
    );
    // Row-parallel managed connections; row 0 is the tagged victim.
    spec.managed = (0..4)
        .map(|row| (RouterId::new(0, row), RouterId::new(SIDE - 1, row)))
        .collect();
    spec.gs_period = SimDuration::from_ns(GS_PERIOD_NS);
    // Kill the middle link of the tagged route's 7-hop east run,
    // (3,0) -> (4,0), a sixth of the way into the window.
    spec.faults = FaultSchedule::new(11 ^ 0xFA_17).with(
        SimTime::ZERO + SimDuration::from_us(window_us / 6),
        FaultKind::LinkDown {
            from: RouterId::new(3, 0),
            dir: Direction::East,
        },
    );
    spec
}

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    let spec = targeted_spec(args.smoke);
    let grid = if args.smoke {
        FaultSweepSpec::smoke()
    } else {
        FaultSweepSpec::repro()
    };
    let grid_name = if args.smoke { "smoke" } else { "repro" };

    if args.list {
        println!(
            "fault sweep: targeted 1-fault run + {} grid, {} jobs (listing, not running)",
            grid_name,
            grid.len()
        );
        for job in grid.expand() {
            println!("{job}");
        }
        return;
    }

    println!(
        "self-healing GS connections under fault injection: {SIDE}x{SIDE} mesh,\n\
         {} managed row connections at {GS_PERIOD_NS} ns CBR over BE background,\n\
         fail-stop fault on the tagged route's middle link (3,0) -> east\n",
        spec.managed.len()
    );

    let start = Instant::now();
    let m = if let Some(dir) = &args.telemetry_out {
        let cfg = TelemetryConfig {
            trace_flits: false, // recovery lifecycle is the track of interest
            ..Default::default()
        };
        let (m, report) = spec.run_with_telemetry(cfg);
        write_telemetry_dir(dir, &[report]).expect("write telemetry");
        m
    } else {
        spec.run()
    };
    let targeted_wall = start.elapsed();

    // Per-connection recovery census.
    let mut t = Table::new(vec![
        "conn",
        "route",
        "hops pre->post",
        "outcome",
        "detect [us]",
        "recover [ns]",
        "tries",
        "lost",
        "bound pre->post [ns]",
        "gbw pre->post [Mf/s]",
        "obs/bound",
    ]);
    let model = |hops: usize| {
        report_for(
            &RouterConfig::paper(),
            &NaConfig::paper(),
            hops,
            SimDuration::from_ns(GS_PERIOD_NS),
        )
    };
    for r in &m.records {
        let outcome = r.outcome.map_or("healthy", RecoveryOutcome::name);
        let healed = r.recovered_at.is_some();
        let pre = model(r.old_hops);
        let post = model(if healed { r.new_hops } else { r.old_hops });
        t.add_row(vec![
            r.idx.to_string(),
            format!("({},{})->({},{})", r.src.x, r.src.y, r.dst.x, r.dst.y),
            if healed {
                format!("{}->{}", r.old_hops, r.new_hops)
            } else {
                r.old_hops.to_string()
            },
            outcome.into(),
            r.detected_at
                .map_or("-".into(), |at| format!("{:.2}", at.as_us_f64())),
            r.recovery_latency
                .map_or("-".into(), |d| format!("{:.1}", d.as_ns_f64())),
            r.attempts.to_string(),
            r.flits_lost.to_string(),
            if healed {
                format!(
                    "{}->{}",
                    r.pre_bound_ns.map_or("-".into(), |b| format!("{b:.1}")),
                    r.post_bound_ns.map_or("-".into(), |b| format!("{b:.1}")),
                )
            } else {
                r.pre_bound_ns.map_or("-".into(), |b| format!("{b:.1}"))
            },
            if healed {
                format!("{:.2}->{:.2}", pre.guaranteed_mfps, post.guaranteed_mfps)
            } else {
                format!("{:.2}", pre.guaranteed_mfps)
            },
            r.post_observed_max_ns
                .zip(r.post_bound_ns)
                .map_or("-".into(), |(o, b)| format!("{:.3}", o / b)),
        ]);
    }
    print!("{t}");

    // Recovery-latency distribution over the healed connections.
    let lats: Vec<f64> = m.recovery_latencies().map(|d| d.as_ns_f64()).collect();
    if !lats.is_empty() {
        let min = lats.iter().copied().fold(f64::INFINITY, f64::min);
        let max = lats.iter().copied().fold(0.0, f64::max);
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        println!(
            "\nrecovery latency over {} healed break(s): min {:.1} ns, mean {:.1} ns, max {:.1} ns",
            lats.len(),
            min,
            mean,
            max
        );
    }
    println!(
        "fault path: {} GS flits blackholed, {} unlocks spoofed, {} flits lost end-to-end",
        m.fault_counters.gs_flits_dropped,
        m.fault_counters.spoofed_unlocks,
        m.records.iter().map(|r| r.flits_lost).sum::<u64>(),
    );

    // The robustness contract for the targeted run.
    assert_eq!(m.broken, 1, "exactly the tagged connection breaks");
    let victim = &m.records[0];
    assert!(
        matches!(
            victim.outcome,
            Some(RecoveryOutcome::Recovered | RecoveryOutcome::ReroutedLongerPath)
        ),
        "the victim must heal on an 8x8 mesh: {victim:?}"
    );
    assert!(victim.flits_lost > 0, "in-flight flits cross the dead link");
    assert_eq!(
        m.post_bound_violations(),
        0,
        "degraded guarantees must hold"
    );
    for r in m.records.iter().skip(1) {
        assert!(r.outcome.is_none(), "bystander connection {} broke", r.idx);
    }

    // The fault-rate × load census grid on top. Worker count stays off
    // stdout: the output is golden-diffed across --threads values.
    println!("\nfault census: {} grid, {} jobs\n", grid_name, grid.len());
    let start = Instant::now();
    let records = run_fault_sweep(&grid, args.threads);
    let grid_wall = start.elapsed();
    print!("{}", fault_summary_table(&records));

    let mut broken = 0;
    for r in &records {
        // `broken` counts break *events*; a connection can break again
        // after healing onto a path a later fault kills, so the
        // per-connection outcome census is bounded by the event count.
        let outcomes = r.recovered + r.rerouted + r.rejected + r.degraded;
        assert!(
            outcomes <= r.broken && (r.broken == 0 || outcomes > 0),
            "job {}: break events and outcomes disagree ({} events, {} outcomes)",
            r.job.id,
            r.broken,
            outcomes
        );
        assert_eq!(
            r.bound_violations, 0,
            "job {}: observed latency above the recomputed bound",
            r.job.id
        );
        broken += r.broken;
    }
    assert!(broken > 0, "no grid point demonstrated a fault");
    println!(
        "\nguarantees held: {} breaks across the grid, 0 post-recovery bound violations",
        broken
    );

    if let Some(path) = &args.csv {
        write_fault_csv(path, &records).expect("write CSV");
        println!("wrote {}", path.display());
    }
    if args.json.is_some() {
        eprintln!("note: repro_faults has no JSON writer; use --csv");
    }
    eprintln!(
        "[targeted run {:.1} ms; census grid {} jobs on {} threads in {:.1} ms]",
        targeted_wall.as_secs_f64() * 1e3,
        grid.len(),
        args.threads,
        grid_wall.as_secs_f64() * 1e3
    );
}
