//! Reproduces the **ALG extension (ref \[6\])** in two measurements:
//!
//! 1. **Bandwidth under saturation** — all 7 VCs backlogged: fair-share
//!    and ALG keep every channel alive (ALG via its age bound); static
//!    priority (ref \[9\], the ablation) starves the lowest VCs.
//! 2. **Latency under contention, stable queues** — every VC offered 90%
//!    of its fair share: ALG gives the high-priority channel near-minimal
//!    latency while fair-share treats all channels alike.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_alg_latency`

use mango::core::{ArbiterKind, RouterConfig, RouterId};
use mango::hw::Table;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

fn build(arbiter: ArbiterKind, seed: u64) -> (NocSim, Vec<mango::core::ConnectionId>) {
    let cfg = RouterConfig {
        arbiter,
        ..RouterConfig::paper()
    };
    let mut sim = NocSim::mesh_with(8, 1, cfg, seed);
    // 7 connections funnel through (1,0)→E, spreading out after.
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(3, 0)),
        (RouterId::new(0, 0), RouterId::new(4, 0)),
        (RouterId::new(0, 0), RouterId::new(5, 0)),
        (RouterId::new(1, 0), RouterId::new(6, 0)),
        (RouterId::new(1, 0), RouterId::new(7, 0)),
        (RouterId::new(1, 0), RouterId::new(3, 0)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("fits"))
        .collect();
    sim.wait_connections_settled().expect("settles");
    (sim, conns)
}

/// Phase 1: saturation throughput per VC.
fn saturated_throughput(arbiter: ArbiterKind) -> Vec<f64> {
    let (mut sim, conns) = build(arbiter, 66);
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(3)),
                format!("vc-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(150));
    flows.iter().map(|f| sim.flow_throughput_m(*f)).collect()
}

/// Phase 2: latency with stable queues (each VC at 90% of its share).
fn contended_latency(arbiter: ArbiterKind) -> Vec<(f64, f64)> {
    let (mut sim, conns) = build(arbiter, 67);
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::poisson(SimDuration::from_ps(12_600)), // ~79 Mf/s each
                format!("vc-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(200));
    flows
        .iter()
        .map(|f| {
            let s = sim.flow(*f);
            (
                s.latency.mean().map_or(f64::NAN, |d| d.as_ns_f64()),
                s.latency.quantile(0.99).map_or(f64::NAN, |d| d.as_ns_f64()),
            )
        })
        .collect()
}

fn main() {
    println!("Phase 1: per-VC throughput, all 7 VCs saturated [Mflit/s]\n");
    let fair_t = saturated_throughput(ArbiterKind::FairShare);
    let alg_t = saturated_throughput(ArbiterKind::Alg { age_bound: 7 });
    let prio_t = saturated_throughput(ArbiterKind::StaticPriority);
    let mut t = Table::new(vec!["VC (priority)", "fair-share", "ALG", "static-prio"]);
    for i in 0..7 {
        t.add_row(vec![
            format!("vc{i}"),
            format!("{:.1}", fair_t[i]),
            format!("{:.1}", alg_t[i]),
            format!("{:.1}", prio_t[i]),
        ]);
    }
    print!("{t}");
    println!(
        "\nstatic priority starves vc6 ({:.1} Mf/s); ALG's age bound keeps it alive ({:.1} Mf/s)",
        prio_t[6], alg_t[6]
    );
    assert!(prio_t[6] < 10.0, "static priority must starve the tail");
    assert!(alg_t[6] > 50.0, "ALG must not starve");
    assert!(fair_t.iter().all(|&r| r > 90.0), "fair share floors hold");

    println!("\nPhase 2: latency at ~70% link load, stable queues [ns]\n");
    let fair_l = contended_latency(ArbiterKind::FairShare);
    let alg_l = contended_latency(ArbiterKind::Alg { age_bound: 7 });
    let mut t = Table::new(vec![
        "VC (priority)",
        "fair mean",
        "fair p99",
        "ALG mean",
        "ALG p99",
    ]);
    for i in 0..7 {
        t.add_row(vec![
            format!("vc{i}"),
            format!("{:.1}", fair_l[i].0),
            format!("{:.1}", fair_l[i].1),
            format!("{:.1}", alg_l[i].0),
            format!("{:.1}", alg_l[i].1),
        ]);
    }
    print!("{t}");
    println!(
        "\nALG top-priority p99 {:.1} ns vs fair-share {:.1} ns on the same channel",
        alg_l[0].1, fair_l[0].1
    );
    assert!(
        alg_l[0].1 < fair_l[0].1,
        "ALG must tighten the high-priority tail: {:.1} !< {:.1}",
        alg_l[0].1,
        fair_l[0].1
    );
}
