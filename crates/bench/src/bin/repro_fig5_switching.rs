//! Reproduces **Fig. 5** (the switching fabric): the 5-bit steering
//! format (3 split bits + 2 switch bits) covers every legal target from
//! every arrival port with zero aliasing, and the switching-module area
//! scales linearly with the number of VCs (Sec. 4.2).
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_fig5_switching`

use mango::core::{Direction, Port, Steer, VcId};
use mango::hw::area::{AreaModel, RouterParams};
use mango::hw::Table;

fn main() {
    // Enumerate the full steering space from each arrival port.
    println!("Steering-bit coverage (Fig. 5: 3 split bits + 2 switch bits)\n");
    let mut t = Table::new(vec![
        "arrival port",
        "valid codes",
        "GS targets",
        "local",
        "BE",
    ]);
    for arrival in [
        Port::Net(Direction::North),
        Port::Net(Direction::East),
        Port::Net(Direction::South),
        Port::Net(Direction::West),
        Port::Local,
    ] {
        let mut gs = 0;
        let mut local = 0;
        let mut be = 0;
        let mut valid = 0;
        let mut seen = std::collections::HashSet::new();
        for code in 0u8..32 {
            if let Ok(target) = Steer::unpack(code, arrival) {
                valid += 1;
                assert!(seen.insert(target), "code aliasing at {arrival}");
                // Round-trip.
                assert_eq!(target.pack(arrival), Ok(code), "asymmetric code {code}");
                match target {
                    Steer::GsBuffer { .. } => gs += 1,
                    Steer::LocalGs { .. } => local += 1,
                    Steer::BeUnit => be += 1,
                }
            }
        }
        t.add_row(vec![
            arrival.to_string(),
            valid.to_string(),
            gs.to_string(),
            local.to_string(),
            be.to_string(),
        ]);
        match arrival {
            Port::Net(_) => {
                assert_eq!(gs, 24, "3 legal dirs x 8 VCs");
                assert_eq!(local, 4);
                assert_eq!(be, 1);
            }
            Port::Local => {
                assert_eq!(gs, 32, "4 dirs x 8 VCs");
                assert_eq!(local, 0);
                assert_eq!(be, 0);
            }
        }
    }
    print!("{t}");

    // Area scaling: linear in V for the switching module, quadratic for
    // the VC-control wire switch (Sec. 4.3's Clos remark).
    println!("\nSwitching-module area vs VCs per port (Sec. 4.2: linear)\n");
    let model = AreaModel::cmos_120nm();
    let mut t = Table::new(vec![
        "VCs/port",
        "switching [mm2]",
        "vs V=8",
        "VC control [mm2]",
        "vs V=8",
    ]);
    let base = model.breakdown(&RouterParams::paper());
    for v in [4usize, 8, 16, 32] {
        let mut p = RouterParams::paper();
        p.gs_vcs = v;
        let b = model.breakdown(&p);
        t.add_row(vec![
            v.to_string(),
            format!("{:.3}", b.switching / 1e6),
            format!("{:.2}x", b.switching / base.switching),
            format!("{:.3}", b.vc_control / 1e6),
            format!("{:.2}x", b.vc_control / base.vc_control),
        ]);
    }
    print!("{t}");
    // Linearity check via increments: the split stage is a V-independent
    // offset, so the V-dependent part must grow linearly — the increment
    // from V=8→16 and V=16→32 differ only by the logarithmic steering-
    // field width.
    let sw = |v: usize| {
        let mut p = RouterParams::paper();
        p.gs_vcs = v;
        model.breakdown(&p).switching
    };
    let d1 = sw(16) - sw(8);
    let d2 = sw(32) - sw(16);
    let mut p16 = RouterParams::paper();
    p16.gs_vcs = 16;
    let vc_ratio = model.breakdown(&p16).vc_control / base.vc_control;
    println!(
        "\nswitching increments: V 8->16 adds {:.3} mm2, 16->32 adds {:.3} mm2 (ratio {:.2}, linear ≈ 2)",
        d1 / 1e6,
        d2 / 1e6,
        d2 / d1
    );
    println!("VC control doubling V: x{vc_ratio:.2} (quadratic = 4)");
    assert!(
        (d2 / d1 - 2.0).abs() < 0.1,
        "switching must be ~linear in V"
    );
    assert!((vc_ratio - 4.0).abs() < 1e-9);
    let _ = VcId(0);
}
