//! Free-form parameter-sweep driver: declare a grid on the command line,
//! fan it out over worker threads, get a summary table plus CSV/JSON.
//!
//! ```text
//! cargo run --release -p mango_bench --bin sweep -- \
//!     --mesh 4x4,8x8 --gs 0,4 --be-gap idle,300,100 --period 12 \
//!     --measure 100 --seeds 1,2,3 --threads 4 --csv out.csv --json out.json
//! ```
//!
//! `--smoke` runs the fixed smoke grid (the CI determinism gate's
//! workload), `--full` the weekly characterization grid. Output is
//! byte-identical for every `--threads` value — see the `mango_sweep`
//! crate docs for the determinism contract.

use mango::net::PatternKind;
use mango_sweep::{run_sweep_graceful, write_csv, write_json, RuntimeInfo, SweepArgs, SweepSpec};
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--smoke | --pattern-smoke | --full] [--mesh WxH[,WxH..]]\n\
         \x20            [--topology NAME[,..]] [--gs N[,N..]] [--be-gap idle|NS[,..]]\n\
         \x20            [--pattern NAME[,..]] [--period NS[,..]] [--measure US[,..]]\n\
         \x20            [--seeds S[,S..]] [--warmup US] [--payload WORDS]\n\
         \x20            [--threads N] [--list] [--csv PATH] [--json PATH]\n\
         patterns: uniform transpose bitcomp bitrev tornado hotspot neighbour\n\
         topologies: meshWxH torusWxH chipletCXxCYxNWxNH (e.g. chiplet2x2x4x4);\n\
         \x20           --topology replaces the --mesh axis"
    );
    std::process::exit(2);
}

fn parse_list<T>(value: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    value
        .split(',')
        .map(|part| {
            parse(part.trim()).unwrap_or_else(|| {
                eprintln!("error: bad {what} entry {part:?}");
                usage()
            })
        })
        .collect()
}

fn main() {
    let args = SweepArgs::from_env();
    // Grid choice is resolved before the dimension flags so the CLI is
    // order-independent: `--mesh 8x8 --pattern-smoke` and
    // `--pattern-smoke --mesh 8x8` both start from the pattern-smoke
    // grid and then apply the override.
    let pattern_smoke = args.rest.iter().any(|a| a == "--pattern-smoke");
    let mut spec = if args.smoke {
        SweepSpec::smoke()
    } else if pattern_smoke {
        SweepSpec::pattern_smoke()
    } else {
        SweepSpec::full()
    };
    let mut full = false;
    let mut rest = args.rest.iter();
    while let Some(flag) = rest.next() {
        let mut value = || {
            rest.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--full" => full = true,
            "--pattern-smoke" => {} // consumed in the pre-scan above
            "--pattern" => {
                spec.patterns = parse_list(value(), "pattern", PatternKind::parse);
            }
            "--mesh" => {
                spec.meshes = parse_list(value(), "mesh", |s| {
                    let (w, h) = s.split_once('x')?;
                    Some((w.parse().ok()?, h.parse().ok()?))
                });
            }
            "--topology" => {
                spec.topologies = parse_list(value(), "topology", mango::net::TopologySpec::parse);
            }
            "--gs" => spec.gs_conns = parse_list(value(), "GS count", |s| s.parse().ok()),
            "--be-gap" => {
                spec.be_gaps_ns = parse_list(value(), "BE gap", |s| match s {
                    "idle" | "none" => Some(None),
                    _ => s.parse().ok().map(Some),
                });
            }
            "--period" => {
                spec.gs_periods_ns = parse_list(value(), "GS period", |s| s.parse().ok());
            }
            "--measure" => {
                spec.measures_us = parse_list(value(), "measure window", |s| s.parse().ok());
            }
            "--seeds" => spec.seeds = parse_list(value(), "seed", |s| s.parse().ok()),
            "--warmup" => {
                spec.warmup_us = value().parse().unwrap_or_else(|_| usage());
            }
            "--payload" => {
                spec.payload_words = value().parse().unwrap_or_else(|_| usage());
            }
            _ => {
                eprintln!("error: unrecognized argument {flag:?}");
                usage();
            }
        }
    }
    if [args.smoke, pattern_smoke, full]
        .iter()
        .filter(|&&f| f)
        .count()
        > 1
    {
        eprintln!("error: --smoke, --pattern-smoke and --full are mutually exclusive");
        usage();
    }
    if spec.is_empty() {
        eprintln!("error: the grid is empty (an empty dimension)");
        std::process::exit(2);
    }
    // Reject structurally impossible pattern/topology pairings at the
    // CLI (transpose on a non-square grid, bit-reverse off powers of
    // two) instead of panicking deep inside a worker thread.
    for topo in spec.topology_axis() {
        let (w, h) = topo.dims();
        for &p in &spec.patterns {
            if let Err(e) = p
                .spatial(w, h)
                .validate(&mango::net::Grid::from_spec(&topo))
            {
                eprintln!("error: pattern {p} on {topo}: {e}");
                std::process::exit(2);
            }
        }
    }

    let grid_name = if args.smoke {
        "smoke"
    } else if pattern_smoke {
        "pattern-smoke"
    } else if full || args.rest.is_empty() {
        "full"
    } else {
        "custom"
    };
    if args.list {
        println!(
            "sweep: {} grid, {} jobs (listing, not running)",
            grid_name,
            spec.len()
        );
        for job in spec.expand() {
            println!("{job}");
        }
        return;
    }
    println!(
        "sweep: {} grid, {} jobs on {} threads\n",
        grid_name,
        spec.len(),
        args.threads
    );
    let start = Instant::now();
    // Graceful degradation: a panicking grid point is reported and
    // dropped; the rest of the grid still produces its records.
    let run = run_sweep_graceful(&spec, args.threads);
    let records = run.records;
    let wall = start.elapsed().as_secs_f64();
    let runtime = RuntimeInfo {
        threads: args.threads,
        wall_seconds: wall,
        total_events: records.iter().map(|r| r.events).sum(),
    };

    print!("{}", mango_sweep::record::summary_table(&records));
    println!(
        "\n{} jobs, {} events in {:.2} s on {} threads  ->  {:.2} Mevents/s",
        records.len(),
        runtime.total_events,
        wall,
        runtime.threads,
        runtime.events_per_sec() / 1e6
    );

    if !run.failed.is_empty() {
        println!(
            "\n{} job(s) FAILED (dropped from the results):",
            run.failed.len()
        );
        for (_, job) in &run.failed {
            println!("  {job}");
        }
    }

    if let Some(path) = &args.csv {
        write_csv(path, &records).expect("write CSV");
        println!("wrote {}", path.display());
    }
    if let Some(path) = &args.json {
        write_json(path, &records, &runtime).expect("write JSON");
        println!("wrote {}", path.display());
    }
    if !run.failed.is_empty() {
        std::process::exit(1);
    }
}
