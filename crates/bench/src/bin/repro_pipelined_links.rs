//! Extension experiment from Sec. 3: "To keep speed up, long links can be
//! implemented as pipelines." Pipeline stages add forward latency but do
//! not reduce the link's flit rate — and, because the share-based VC loop
//! gets longer, the number of VCs needed to saturate a long link grows,
//! while depth-1 buffers keep sustaining the fair-share floor as long as
//! the loop fits inside one fair-share round.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_pipelined_links`

use mango::core::{RouterConfig, RouterId};
use mango::hw::Table;
use mango::net::{EmitWindow, Grid, NaConfig, Network, NocSim, Pattern};
use mango::sim::SimDuration;

/// Measures single-VC and 7-VC aggregate throughput across one link with
/// `extra` pipeline delay each way.
fn run(extra: SimDuration) -> (f64, f64) {
    let build = || {
        let mut grid = Grid::new(8, 1);
        grid.set_default_link_extra(extra);
        NocSim::new(
            Network::new(grid, RouterConfig::paper(), NaConfig::paper()),
            7,
        )
    };

    // Single VC.
    let mut sim = build();
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .expect("fits");
    sim.wait_connections_settled().expect("settles");
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let f = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(1)),
        "solo",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(100));
    let solo = sim.flow_throughput_m(f);

    // 7 VCs through link (1,0)→E.
    let mut sim = build();
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(3, 0)),
        (RouterId::new(0, 0), RouterId::new(4, 0)),
        (RouterId::new(0, 0), RouterId::new(5, 0)),
        (RouterId::new(1, 0), RouterId::new(6, 0)),
        (RouterId::new(1, 0), RouterId::new(7, 0)),
        (RouterId::new(1, 0), RouterId::new(3, 0)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("fits"))
        .collect();
    sim.wait_connections_settled().expect("settles");
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(3)),
                format!("sat-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(150));
    let aggregate: f64 = flows.iter().map(|f| sim.flow_throughput_m(*f)).sum();
    (solo, aggregate)
}

fn main() {
    let link_m = RouterConfig::paper().timing.link_cycle.as_rate_mhz();
    println!("Pipelined long links (Sec. 3): per-stage latency vs utilization\n");
    let mut t = Table::new(vec![
        "extra link delay",
        "single VC [Mflit/s]",
        "7 VCs aggregate [Mflit/s]",
        "aggregate share [%]",
    ]);
    let mut results = Vec::new();
    for extra_ps in [0u64, 1000, 2500, 5000] {
        let extra = SimDuration::from_ps(extra_ps);
        let (solo, aggregate) = run(extra);
        t.add_row(vec![
            format!("{extra}"),
            format!("{solo:.1}"),
            format!("{aggregate:.1}"),
            format!("{:.1}", aggregate / link_m * 100.0),
        ]);
        results.push((extra_ps, solo, aggregate));
    }
    print!("{t}");

    // Single-VC throughput falls with the longer share loop...
    assert!(
        results[3].1 < results[0].1 * 0.5,
        "long loop must slow a lone VC"
    );
    // ...but overlapping VCs keep the link near capacity while the loop
    // fits the fair-share round (loop ≈ 1.75 ns + 2×extra ≤ 10.06 ns ⇒
    // extra ≤ ~4.2 ns; the 5 ns point exceeds it and dips).
    assert!(
        results[1].2 > 0.97 * link_m,
        "1 ns stages: aggregate must stay ~saturated, got {:.1}",
        results[1].2
    );
    println!(
        "\nwith 1 ns extra stages the link still runs at {:.1}% via VC overlap;",
        results[1].2 / link_m * 100.0
    );
    println!(
        "at 5 ns the share loop (~{:.1} ns) exceeds the 8-slot fair-share round ({:.1} ns) and depth-1 buffers no longer cover it — the paper's buffer-sizing condition, demonstrated.",
        1.75 + 2.0 * 5.0,
        8.0 * 1.258
    );
}
