//! The paper's stated future work (Sec. 6): delay-insensitive 1-of-4
//! signaling on the inter-router links, quantified against the
//! implemented bundled-data links — wires, transitions, energy, timing
//! margins, and the system-level effect of removing the matched-delay
//! margin from long links.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_di_links`

use mango::core::{RouterConfig, RouterId};
use mango::hw::link::{decode_1of4, encode_1of4, LinkEncoding};
use mango::hw::power::PowerModel;
use mango::hw::Table;
use mango::net::{EmitWindow, Grid, NaConfig, Network, NocSim, Pattern};
use mango::sim::SimDuration;

fn main() {
    let power = PowerModel::cmos_120nm();
    let w = 34; // the post-split flit the links carry

    // Functional check: the codec is lossless.
    for word in [0u32, 0xDEAD_BEEF, 0xFFFF_FFFF] {
        assert_eq!(decode_1of4(&encode_1of4(word, 32)), word);
    }

    println!("Link signaling: bundled data (implemented) vs 1-of-4 DI (future work)\n");
    let mut t = Table::new(vec!["property", "bundled data", "1-of-4 DI"]);
    let b = LinkEncoding::BundledData;
    let d = LinkEncoding::OneOfFour;
    t.add_row(vec![
        "wires per link".to_string(),
        b.wires(w).to_string(),
        d.wires(w).to_string(),
    ]);
    t.add_row(vec![
        "transitions per flit (random data)".to_string(),
        format!("{:.1}", b.transitions_per_flit(w)),
        format!("{:.1}", d.transitions_per_flit(w)),
    ]);
    t.add_row(vec![
        "link energy per flit [pJ]".to_string(),
        format!("{:.2}", b.energy_per_flit_pj(w, &power)),
        format!("{:.2}", d.energy_per_flit_pj(w, &power)),
    ]);
    t.add_row(vec![
        "timing assumption on the wire".to_string(),
        format!("matched delay (x{:.2} margin)", b.timing_margin()),
        "none (completion detected)".to_string(),
    ]);
    t.add_row(vec![
        "delay-insensitive".to_string(),
        "no".to_string(),
        "yes".to_string(),
    ]);
    print!("{t}");

    // System-level effect: the bundled-data margin is dead latency on
    // every link; removing it (DI) shortens a 6-hop connection's latency
    // by 6 × margin × wire delay. Model the margin as extra link delay.
    let wire_ps = 400.0;
    let margin_ps = (b.timing_margin() - 1.0) * wire_ps;
    let measure = |extra_ps: u64| -> f64 {
        let mut grid = Grid::new(4, 4);
        grid.set_default_link_extra(SimDuration::from_ps(extra_ps));
        let net = Network::new(grid, RouterConfig::paper(), NaConfig::paper());
        let mut sim = NocSim::new(net, 19);
        let conn = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
            .expect("fits");
        sim.wait_connections_settled().expect("settles");
        sim.begin_measurement();
        let flow = sim.add_gs_source(
            conn,
            Pattern::cbr(SimDuration::from_ns(50)),
            "di",
            EmitWindow {
                limit: Some(500),
                ..Default::default()
            },
        );
        sim.run_to_quiescence();
        sim.flow(flow).latency.mean().unwrap().as_ns_f64()
    };
    let with_margin = measure(margin_ps.round() as u64);
    let di = measure(0);
    println!(
        "\n6-hop GS latency: {with_margin:.2} ns with bundled-data margins vs {di:.2} ns DI \
         ({:+.2} ns = 6 links x {margin_ps:.0} ps margin)",
        di - with_margin
    );
    assert!((with_margin - di - 6.0 * margin_ps / 1000.0).abs() < 0.01);
    println!(
        "\ntrade: 1-of-4 doubles link wires ({} -> {}) and raises per-flit link energy \
         {:.2} -> {:.2} pJ, buying timing closure on long links without margins — \
         the modularity argument of Sec. 6.",
        b.wires(w),
        d.wires(w),
        b.energy_per_flit_pj(w, &power),
        d.energy_per_flit_pj(w, &power)
    );
}
