//! Extension experiment: **GS guarantees under adversarial spatial
//! traffic patterns** — the evaluation the paper's Fig. 7/8 never ran.
//! The paper argues GS connections are logically independent of
//! best-effort traffic; its figures only check that against
//! uniform-random BE. Here the standard NoC pattern suite (uniform,
//! transpose, bit-complement, tornado) plus a hotspot aimed straight at
//! the GS route's column sweeps offered load on an 8×8 mesh, producing a
//! per-pattern saturation curve — and at every point the tagged GS
//! stream's observed worst latency is checked against its analytical
//! [`mango::qos::GuaranteeReport`] bound. The hotspot column case is the
//! adversarial interference the connection-oriented argument predicts
//! survives.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_patterns`
//! `[-- --threads N] [--smoke] [--list]`
//!
//! Everything on stdout is deterministic and byte-diffed in CI against
//! `tests/golden/repro_patterns_smoke.txt` at 1 and 4 worker threads;
//! wall-clock rates go to stderr.

use mango::core::{RouterConfig, RouterId};
use mango::hw::Table;
use mango::net::{
    NaConfig, ScenarioMetrics, ScenarioSpec, SpatialPattern, TemporalSpec, TrafficSpec,
};
use mango::qos::report_for;
use mango::sim::SimDuration;
use mango_sweep::{run_parallel, SweepArgs};
use std::time::Instant;

const SIDE: u8 = 8;
const GS_PERIOD_NS: u64 = 12;

/// The tagged GS connection: (0,0) → (7,7), XY-routed east along row 0
/// then south down column 7 — 14 links.
const GS_SRC: (u8, u8) = (0, 0);
const GS_DST: (u8, u8) = (7, 7);
const GS_HOPS: usize = 14;

/// The interference patterns, in output order. The hotspot aims 60 % of
/// every node's traffic at two nodes on column 7 — the GS route's south
/// leg — so BE fan-in converges exactly where the tagged stream runs.
fn patterns() -> Vec<(&'static str, SpatialPattern)> {
    vec![
        ("uniform", SpatialPattern::UniformRandom),
        ("transpose", SpatialPattern::Transpose),
        ("bitcomp", SpatialPattern::BitComplement),
        ("tornado", SpatialPattern::Tornado),
        (
            "hotspot-gs-col",
            SpatialPattern::hotspot(vec![RouterId::new(7, 3), RouterId::new(7, 4)], 0.6),
        ),
    ]
}

fn spec_for(spatial: &SpatialPattern, gap_ns: u64) -> ScenarioSpec {
    ScenarioSpec::mesh(SIDE, SIDE, 7)
        .warmup(SimDuration::from_us(5))
        .measure_for(SimDuration::from_us(25))
        .gs(
            RouterId::new(GS_SRC.0, GS_SRC.1),
            RouterId::new(GS_DST.0, GS_DST.1),
            TemporalSpec::cbr(SimDuration::from_ns(GS_PERIOD_NS)),
        )
        .traffic(
            TrafficSpec::new(
                spatial.clone(),
                TemporalSpec::poisson(SimDuration::from_ns(gap_ns)),
            )
            .payload(4)
            .named("bg-"),
        )
}

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    assert!(
        args.csv.is_none() && args.json.is_none(),
        "repro_patterns is table-only; --csv/--json are not supported"
    );
    let gaps_ns: &[u64] = if args.smoke {
        &[1000, 300, 100]
    } else {
        &[2000, 1000, 300, 100, 50]
    };
    let patterns = patterns();

    if args.list {
        println!(
            "pattern sweep: {} patterns x {} loads on {SIDE}x{SIDE} (listing, not running)",
            patterns.len(),
            gaps_ns.len()
        );
        let mut id = 0;
        for (name, _) in &patterns {
            for gap in gaps_ns {
                println!("job {id}: pattern={name} be_gap={gap}ns");
                id += 1;
            }
        }
        return;
    }

    let report = report_for(
        &RouterConfig::paper(),
        &NaConfig::paper(),
        GS_HOPS,
        SimDuration::from_ns(GS_PERIOD_NS),
    );
    assert!(report.conforming, "the tagged stream must be conforming");
    let bound_ns = report.worst_latency_ns().expect("conforming has a bound");

    println!(
        "GS guarantees under spatial interference patterns: {SIDE}x{SIDE} mesh,\n\
         tagged GS ({},{}) -> ({},{}) at {GS_PERIOD_NS} ns CBR over {GS_HOPS} links,\n\
         analytical worst-case bound {bound_ns:.1} ns\n",
        GS_SRC.0, GS_SRC.1, GS_DST.0, GS_DST.1
    );

    // One job per (pattern, load) point, fanned out over workers.
    let jobs: Vec<(usize, u64)> = (0..patterns.len())
        .flat_map(|p| gaps_ns.iter().map(move |&g| (p, g)))
        .collect();
    let start = Instant::now();
    let metrics: Vec<ScenarioMetrics> = run_parallel(&jobs, args.threads, |_, &(p, gap)| {
        spec_for(&patterns[p].1, gap).run()
    });
    let wall = start.elapsed();

    let mut worst_ratio = 0.0_f64;
    for (p, (name, _)) in patterns.iter().enumerate() {
        println!("pattern: {name}\n");
        let mut t = Table::new(vec![
            "BE gap/node [ns]",
            "BE delivered [Mpkt/s]",
            "BE mean [ns]",
            "BE worst p99 [ns]",
            "GS [Mflit/s]",
            "GS mean [ns]",
            "GS max [ns]",
            "obs/bound",
        ]);
        for (i, &gap) in gaps_ns.iter().enumerate() {
            let m = &metrics[p * gaps_ns.len() + i];
            let gs = m.gs(0);
            let observed = gs.max_ns.expect("GS latency recorded");
            assert!(
                report.admits_observation(observed),
                "pattern {name}, BE gap {gap} ns: observed GS max {observed:.1} ns \
                 exceeds the analytical bound {bound_ns:.1} ns"
            );
            assert_eq!(gs.sequence_errors, 0, "GS delivery stays in order");
            let ratio = observed / bound_ns;
            worst_ratio = worst_ratio.max(ratio);
            t.add_row(vec![
                gap.to_string(),
                format!("{:.2}", m.be_throughput_m()),
                format!("{:.1}", m.be_weighted_mean_ns()),
                format!("{:.1}", m.be_p99_worst_ns()),
                format!("{:.2}", gs.throughput_m),
                format!("{:.2}", gs.mean_ns.expect("GS latency recorded")),
                format!("{:.2}", observed),
                format!("{ratio:.3}"),
            ]);
        }
        print!("{t}");
        // The guarantee story: GS throughput must not move with BE load,
        // whatever shape the interference takes.
        let first = metrics[p * gaps_ns.len()].gs(0).throughput_m;
        let last = metrics[p * gaps_ns.len() + gaps_ns.len() - 1]
            .gs(0)
            .throughput_m;
        assert!(
            (last - first).abs() / first < 0.01,
            "pattern {name}: GS throughput moved with BE load ({first:.2} -> {last:.2})"
        );
        println!();
    }
    println!(
        "guarantees held: {} patterns x {} loads, 0 bound violations, worst obs/bound {:.3}",
        patterns.len(),
        gaps_ns.len(),
        worst_ratio
    );
    eprintln!(
        "[pattern grid: {} jobs on {} threads in {:.1} ms]",
        jobs.len(),
        args.threads,
        wall.as_secs_f64() * 1e3
    );
}
