//! Simulator throughput probe: runs the `network_sim` benchmark scenario
//! (mixed GS + BE, four crossing connections plus uniform BE background)
//! and reports raw events/second, the number the simulator-performance
//! roadmap track is measured in.
//!
//! Usage:
//! `sim_rate [simulated_us] [repeats] [--mesh N] [--buckets B] [--width-log2 W] [--json] [--profile] [--telemetry]`
//! (defaults: 50 µs × 5 on a 4×4 mesh). `--mesh N` runs the same mixed
//! workload on an N×N mesh — the mesh-scaling probe. `--buckets` /
//! `--width-log2` override the event-wheel geometry (default: the
//! per-scenario heuristic) for wheel-geometry validation sweeps; results
//! are geometry-independent, only the rate moves. `--json` emits one
//! machine-readable object on stdout so CI can record the rate without
//! scraping logs. `--profile` turns on kernel self-profiling and prints
//! per-event-kind dispatch counts plus wheel-occupancy statistics after
//! the last run (profiling adds a little per-dispatch work, so rates
//! measured with it are not comparable to unprofiled ones).
//! `--telemetry` activates the telemetry sink (metrics + epoch samplers,
//! flit tracing off) — the sampler-overhead probe: compare its rate to a
//! plain run of the same workload. `--region-block` turns on
//! region-blocked event scheduling (results are byte-identical either
//! way; this probes the scan-grouping overhead and reports per-region
//! dispatch counts). On meshes other than 4×4 a 4×4 reference is timed
//! in the same invocation, and the per-event cost ratio against it is
//! reported (`ratio_vs_4x4` — the cache-bounded-scaling headline).

use mango::net::TelemetryConfig;
use mango::sim::{SimDuration, WheelGeometry};
use mango_bench::mixed_mesh_geom;
use std::time::Instant;

struct RunConfig {
    mesh: u8,
    sim_us: u64,
    repeats: u64,
    geometry: Option<WheelGeometry>,
    profile: bool,
    telemetry: bool,
    region_block: bool,
}

struct RunResult {
    best: f64,
    runs: Vec<String>,
    profile: Option<mango::sim::KernelProfile>,
    regions: Vec<u64>,
}

/// Times `repeats` fresh runs of the mixed workload; returns the best
/// rate, per-run records, and the last run's profile/region census.
fn measure(cfg: &RunConfig, quiet: bool) -> RunResult {
    let mut best = f64::MIN;
    let mut runs = Vec::new();
    let mut last_profile = None;
    let mut regions = Vec::new();
    for run in 0..cfg.repeats {
        let mut sim = mixed_mesh_geom(cfg.mesh, cfg.mesh, 99, cfg.geometry);
        if cfg.profile {
            sim.enable_kernel_profiling();
        }
        if cfg.telemetry {
            sim.enable_telemetry(TelemetryConfig {
                trace_flits: false,
                ..Default::default()
            });
        }
        if cfg.region_block {
            sim.enable_region_blocking();
        }
        let setup_events = sim.events_processed();
        let start = Instant::now();
        sim.run_for(SimDuration::from_us(cfg.sim_us));
        let wall = start.elapsed().as_secs_f64();
        let events = sim.events_processed() - setup_events;
        let rate = events as f64 / wall;
        best = best.max(rate);
        runs.push(format!(
            "{{\"events\":{events},\"wall_ms\":{:.3},\"events_per_sec\":{:.0}}}",
            wall * 1e3,
            rate
        ));
        if !quiet {
            println!(
                "  run {run}: {events} events in {:.1} ms  ->  {:.2} Mevents/s",
                wall * 1e3,
                rate / 1e6
            );
        }
        if cfg.profile {
            last_profile = sim.kernel_profile().cloned();
        }
        if cfg.region_block {
            regions = sim.region_dispatch_counts().to_vec();
        }
    }
    RunResult {
        best,
        runs,
        profile: last_profile,
        regions,
    }
}

fn main() {
    let mut json = false;
    let mut profile = false;
    let mut telemetry = false;
    let mut region_block = false;
    let mut mesh: u8 = 4;
    let mut buckets: Option<usize> = None;
    let mut width_log2: Option<u32> = None;
    let mut positional: Vec<u64> = Vec::new();
    let mut args = std::env::args().skip(1);
    fn usage() -> ! {
        eprintln!(
            "usage: sim_rate [simulated_us] [repeats] [--mesh N] \
             [--buckets B] [--width-log2 W] [--json] [--profile] [--telemetry] \
             [--region-block]"
        );
        std::process::exit(2);
    }
    fn flag_val<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
        match args.next().and_then(|v| v.parse().ok()) {
            Some(v) => v,
            None => usage(),
        }
    }
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--profile" => profile = true,
            "--telemetry" => telemetry = true,
            "--region-block" => region_block = true,
            "--mesh" => mesh = flag_val(&mut args),
            "--buckets" => buckets = Some(flag_val(&mut args)),
            "--width-log2" => width_log2 = Some(flag_val(&mut args)),
            _ => positional.push(a.parse().unwrap_or_else(|_| usage())),
        }
    }
    let sim_us = positional.first().copied().unwrap_or(50);
    let repeats = positional.get(1).copied().unwrap_or(5);
    let geometry = (buckets.is_some() || width_log2.is_some()).then(|| WheelGeometry {
        num_buckets: buckets.unwrap_or(WheelGeometry::DEFAULT.num_buckets),
        width_log2: width_log2.unwrap_or(WheelGeometry::DEFAULT.width_log2),
    });

    let geom = geometry.unwrap_or_else(|| {
        WheelGeometry::for_mesh(
            mesh as usize * mesh as usize,
            mango::hw::RouterTiming::paper_typical()
                .min_event_delay()
                .as_ps(),
        )
    });
    if !json {
        println!(
            "mixed {mesh}x{mesh} mesh, {sim_us} us simulated, {repeats} runs, \
             wheel {}x{} ps{}",
            geom.num_buckets,
            geom.width_ps(),
            if region_block { ", region-blocked" } else { "" }
        );
    }
    let cfg = RunConfig {
        mesh,
        sim_us,
        repeats,
        geometry,
        profile,
        telemetry,
        region_block,
    };
    let result = measure(&cfg, json);
    let best = result.best;
    let per_event_ns = 1e9 / best;
    // The scaling headline: per-event cost relative to a 4x4 run of the
    // same workload, timed in this invocation so both sides see the same
    // machine state. 1.0 on the 4x4 itself.
    let ratio_vs_4x4 = if mesh == 4 {
        1.0
    } else {
        let ref_cfg = RunConfig {
            mesh: 4,
            geometry: None,
            ..cfg
        };
        let ref_best = measure(&ref_cfg, true).best;
        (1e9 / best) / (1e9 / ref_best)
    };
    if let Some(p) = &result.profile {
        let total = p.samples().max(1);
        println!("kernel profile ({} dispatches):", p.samples());
        for (name, count) in p.kind_counts() {
            if count > 0 {
                println!(
                    "  {name:<16} {count:>10}  ({:5.1}%)",
                    count as f64 * 100.0 / total as f64
                );
            }
        }
        println!(
            "  queue length     mean {:.1}  max {}",
            p.queue_len_mean(),
            p.queue_len_max()
        );
        println!(
            "  occupied buckets mean {:.1}  max {}",
            p.occupied_buckets_mean(),
            p.occupied_buckets_max()
        );
    }
    if json {
        let regions = result
            .regions
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"scenario\":\"mixed_{mesh}x{mesh}\",\"mesh\":{mesh},\"sim_us\":{sim_us},\
             \"repeats\":{repeats},\"wheel_buckets\":{},\"wheel_width_ps\":{},\
             \"region_block\":{region_block},\"region_dispatch\":[{regions}],\
             \"runs\":[{}],\"best_events_per_sec\":{:.0},\"best_mevents_per_sec\":{:.2},\
             \"per_event_ns\":{:.1},\"ratio_vs_4x4\":{:.3}}}",
            geom.num_buckets,
            geom.width_ps(),
            result.runs.join(","),
            best,
            best / 1e6,
            per_event_ns,
            ratio_vs_4x4
        );
    } else {
        if region_block && !result.regions.is_empty() {
            let total: u64 = result.regions.iter().sum();
            println!(
                "region dispatch ({} regions, last run):",
                result.regions.len()
            );
            for (r, c) in result.regions.iter().enumerate() {
                println!(
                    "  region {r:<3} {c:>10}  ({:5.1}%)",
                    *c as f64 * 100.0 / total.max(1) as f64
                );
            }
        }
        println!(
            "best: {:.2} Mevents/s  ({per_event_ns:.0} ns/event, {ratio_vs_4x4:.2}x vs 4x4)",
            best / 1e6
        );
    }
}
