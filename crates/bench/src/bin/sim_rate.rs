//! Simulator throughput probe: runs the `network_sim` benchmark scenario
//! (mixed GS + BE on a 4×4 mesh) and reports raw events/second, the
//! number the simulator-performance roadmap track is measured in.
//!
//! Usage: `sim_rate [simulated_us] [repeats] [--json]`
//! (defaults: 50 µs × 5). `--json` emits one machine-readable object on
//! stdout so CI can record the rate without scraping logs.

use mango::sim::SimDuration;
use mango_bench::mixed_mesh_4x4;
use std::time::Instant;

fn main() {
    let mut json = false;
    let positional: Vec<u64> = std::env::args()
        .skip(1)
        .filter(|a| {
            if a == "--json" {
                json = true;
                false
            } else {
                true
            }
        })
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("usage: sim_rate [simulated_us] [repeats] [--json]");
                std::process::exit(2);
            })
        })
        .collect();
    let sim_us = positional.first().copied().unwrap_or(50);
    let repeats = positional.get(1).copied().unwrap_or(5);

    if !json {
        println!("mixed 4x4 mesh, {sim_us} us simulated, {repeats} runs");
    }
    let mut best = f64::MIN;
    let mut runs = Vec::new();
    for run in 0..repeats {
        let mut sim = mixed_mesh_4x4(99);
        let setup_events = sim.events_processed();
        let start = Instant::now();
        sim.run_for(SimDuration::from_us(sim_us));
        let wall = start.elapsed().as_secs_f64();
        let events = sim.events_processed() - setup_events;
        let rate = events as f64 / wall;
        best = best.max(rate);
        runs.push(format!(
            "{{\"events\":{events},\"wall_ms\":{:.3},\"events_per_sec\":{:.0}}}",
            wall * 1e3,
            rate
        ));
        if !json {
            println!(
                "  run {run}: {events} events in {:.1} ms  ->  {:.2} Mevents/s",
                wall * 1e3,
                rate / 1e6
            );
        }
    }
    if json {
        println!(
            "{{\"scenario\":\"mixed_4x4\",\"sim_us\":{sim_us},\"repeats\":{repeats},\
             \"runs\":[{}],\"best_events_per_sec\":{:.0},\"best_mevents_per_sec\":{:.2}}}",
            runs.join(","),
            best,
            best / 1e6
        );
    } else {
        println!("best: {:.2} Mevents/s", best / 1e6);
    }
}
