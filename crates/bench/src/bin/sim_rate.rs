//! Simulator throughput probe: runs the `network_sim` benchmark scenario
//! (mixed GS + BE on a 4×4 mesh) and reports raw events/second, the
//! number the simulator-performance roadmap track is measured in.
//!
//! Usage: `sim_rate [simulated_us] [repeats]` (defaults: 50 µs × 5).

use mango::sim::SimDuration;
use mango_bench::mixed_mesh_4x4;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let sim_us: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(50);
    let repeats: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("mixed 4x4 mesh, {sim_us} us simulated, {repeats} runs");
    let mut best = f64::MIN;
    for run in 0..repeats {
        let mut sim = mixed_mesh_4x4(99);
        let setup_events = sim.events_processed();
        let start = Instant::now();
        sim.run_for(SimDuration::from_us(sim_us));
        let wall = start.elapsed().as_secs_f64();
        let events = sim.events_processed() - setup_events;
        let rate = events as f64 / wall;
        best = best.max(rate);
        println!(
            "  run {run}: {events} events in {:.1} ms  ->  {:.2} Mevents/s",
            wall * 1e3,
            rate / 1e6
        );
    }
    println!("best: {:.2} Mevents/s", best / 1e6);
}
