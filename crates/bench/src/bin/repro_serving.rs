//! Extension experiment: application-serving capacity curves. Whole
//! task graphs (VOPD-class multimedia workloads) arrive as Poisson
//! instances, are placed by an optimizer scoring through the real
//! admission controller, admitted all-or-nothing, opened via in-band
//! programming packets, streamed per edge, and torn down with exact
//! budget return. The sweep reports admitted-vs-rejected capacity per
//! topology — including a chiplet mesh whose seam D2D links tighten the
//! bounds — and compares greedy against simulated-annealing placement.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_serving`
//! `[-- --threads N] [--smoke] [--list] [--csv PATH]`
//!
//! The output is deterministic: byte-identical stdout and CSV for every
//! `--threads` value (the CI serving gate diffs 1 vs 4). The binary
//! asserts the serving contract — zero latency-bound violations among
//! admitted edges, annealing admitting at least as many instances as
//! greedy on every matching grid point, and rejections (not panics)
//! past saturation.

use mango_sweep::{
    capacity_curves, run_serving_sweep, serving_summary_table, write_serving_csv, ServingSweepSpec,
};
use std::time::Instant;

fn main() {
    let args = mango_sweep::SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    let spec = if args.smoke {
        ServingSweepSpec::smoke()
    } else {
        ServingSweepSpec::repro()
    };
    let grid_name = if args.smoke { "smoke" } else { "repro" };

    if args.list {
        println!(
            "serving sweep: {} grid, {} jobs (listing, not running)",
            grid_name,
            spec.len()
        );
        for job in spec.expand() {
            println!("{job}");
        }
        return;
    }

    println!(
        "application serving: {} grid, {} jobs\n",
        grid_name,
        spec.len()
    );
    let start = Instant::now();
    let records = run_serving_sweep(&spec, args.threads);
    let wall = start.elapsed().as_secs_f64();

    print!("{}", serving_summary_table(&records));
    println!("\ncapacity curves (admitted vs offered as arrivals tighten):");
    print!("{}", capacity_curves(&records));
    let events: u64 = records.iter().map(|r| r.events).sum();
    // Wall-clock rates are the one legitimately nondeterministic output:
    // stderr, so stdout stays golden-diffable across thread counts.
    eprintln!(
        "[{} jobs, {} events in {:.2} s on {} threads -> {:.2} Mevents/s]",
        records.len(),
        events,
        wall,
        args.threads,
        events as f64 / wall / 1e6
    );
    println!("\n{} jobs, {} events", records.len(), events);

    // The serving contract, point by point.
    for r in &records {
        assert!(r.offered > 0, "job {} offered nothing", r.job.id);
        assert!(r.admitted > 0, "job {} admitted nothing", r.job.id);
        assert_eq!(
            r.bound_violations, 0,
            "job {}: a streamed edge exceeded its admitted latency bound",
            r.job.id
        );
        assert!(
            r.worst_bound_ratio <= 1.0,
            "job {}: worst observed/bound ratio {}",
            r.job.id,
            r.worst_bound_ratio
        );
    }
    // Annealing must serve at least as many instances as greedy on
    // every matching (topology, graph, arrival, seed) point.
    for g in records.iter().filter(|r| r.job.placer.name() == "greedy") {
        if let Some(a) = records.iter().find(|r| {
            r.job.placer.name() == "anneal"
                && r.job.topology == g.job.topology
                && r.job.graph == g.job.graph
                && r.job.arrival_gap_ns == g.job.arrival_gap_ns
                && r.job.seed == g.job.seed
        }) {
            assert!(
                a.admitted >= g.admitted,
                "annealing admitted {} < greedy {} on {}",
                a.admitted,
                g.admitted,
                g.job
            );
        }
    }
    // Saturation shows up as typed rejections, and the offered scale is
    // real (the repro grid pushes thousands of instances per point).
    let rejected: u64 = records.iter().map(|r| r.rejected).sum();
    assert!(rejected > 0, "no grid point demonstrated rejection");
    let max_offered = records.iter().map(|r| r.offered).max().unwrap_or(0);
    let scale_floor = if args.smoke { 40 } else { 400 };
    assert!(
        max_offered >= scale_floor,
        "largest point offered only {max_offered} instances (need >= {scale_floor})"
    );
    println!(
        "guarantees held: 0 bound violations; scale point {} offered instances; {} rejections across the grid",
        max_offered, rejected
    );

    if let Some(path) = &args.csv {
        write_serving_csv(path, &records).expect("write CSV");
        eprintln!("[wrote {}]", path.display());
    }
    if args.json.is_some() {
        eprintln!("note: repro_serving has no JSON writer; use --csv");
    }
}
