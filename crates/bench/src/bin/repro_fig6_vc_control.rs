//! Reproduces the claims of **Fig. 6 / Sec. 4.3** (share-based VC
//! control): a single VC cannot utilize the full link bandwidth (its
//! share cycle exceeds the link cycle), but the unlock handshakes of
//! several VCs overlap, so a handful of VCs saturate the link; and the
//! depth-1 buffers suffice for the fair-share floor.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_fig6_vc_control`

use mango::hw::{RouterTiming, Table};
use mango::sim::SimDuration;
use mango_bench::{funnel_sim, measure_gs};

fn main() {
    let timing = RouterTiming::paper_typical();
    let link_m = timing.link_cycle.as_rate_mhz();
    println!("Share-based VC control (Fig. 6)\n");
    println!(
        "link cycle {} -> capacity {:.1} Mflit/s; VC share loop {} -> single-VC cap {:.1} Mflit/s",
        timing.link_cycle,
        link_m,
        timing.vc_loop(),
        timing.vc_loop().as_rate_mhz(),
    );
    println!(
        "fair-share condition: VC loop {} <= 8 x link cycle {} : {}\n",
        timing.vc_loop(),
        timing.link_cycle * 8,
        timing.supports_fair_share(8),
    );

    // Sweep the number of active VCs on one link and measure aggregate
    // delivered bandwidth: 1 VC is pinned below link capacity, several
    // VCs overlap their unlock handshakes and saturate the link.
    let mut t = Table::new(vec![
        "active VCs",
        "aggregate [Mflit/s]",
        "link share [%]",
        "per-VC [Mflit/s]",
    ]);
    let mut single_vc = 0.0;
    let mut full = 0.0;
    for n in [1usize, 2, 3, 5, 7] {
        let (mut sim, tagged) = funnel_sim(n - 1, 9);
        // Tagged offered at 500 Mf/s (beyond any share it can get).
        let run = measure_gs(&mut sim, tagged, SimDuration::from_ns(2), 5, 100);
        // Aggregate = tagged + contenders (each measured via flow stats).
        let mut aggregate = run.throughput_m;
        for f in 0..(n - 1) as u32 {
            aggregate += sim.flow_throughput_m(f);
        }
        if n == 1 {
            single_vc = aggregate;
        }
        if n == 7 {
            full = aggregate;
        }
        t.add_row(vec![
            format!("{n}"),
            format!("{aggregate:.1}"),
            format!("{:.1}", aggregate / link_m * 100.0),
            format!("{:.1}", aggregate / n as f64),
        ]);
    }
    print!("{t}");
    println!();
    println!(
        "single VC reaches {:.1}% of link bandwidth (paper: \"A single VC cannot utilize the full link bandwidth\")",
        single_vc / link_m * 100.0
    );
    println!(
        "7 VCs reach {:.1}% (overlapping unlock handshakes exploit the full bandwidth)",
        full / link_m * 100.0
    );
    assert!(single_vc < 0.75 * link_m, "single VC must not saturate");
    assert!(full > 0.95 * link_m, "7 VCs must saturate");
}
