//! Reproduces the **scaling remarks of Sec. 4.2/4.3**: router area as a
//! function of ports, VCs, flit width and buffer depth — the switching
//! module linear in V, the VC-control wire switch quadratic (motivating
//! the Clos-network suggestion for large V).
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_scaling`
//! `[-- --threads N]`
//!
//! The configuration grid is evaluated through the sweep runner — each
//! design point is an independent analytic job, merged in grid order.
//! (The model is closed-form, so this is parallelism for uniformity with
//! the simulation sweeps, not for speed.)

use mango::hw::area::{AreaModel, RouterParams};
use mango::hw::power::PowerModel;
use mango::hw::Table;
use mango_sweep::{run_parallel, SweepArgs};

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    assert!(
        !args.smoke && args.csv.is_none() && args.json.is_none(),
        "repro_scaling is analytic and table-only; --smoke/--csv/--json are not supported"
    );
    let model = AreaModel::cmos_120nm();
    let base = model.breakdown(&RouterParams::paper());

    println!("Router area scaling (paper design point = 1.00x)\n");
    let mut t = Table::new(vec![
        "configuration",
        "total [mm2]",
        "vs paper",
        "switching",
        "VC control",
        "buffers",
    ]);
    let grid: Vec<(&str, RouterParams)> = vec![
        ("paper: P=5 V=8 W=32 D=1", RouterParams::paper()),
        ("V=4 (fewer connections)", {
            let mut p = RouterParams::paper();
            p.gs_vcs = 4;
            p
        }),
        ("V=16", {
            let mut p = RouterParams::paper();
            p.gs_vcs = 16;
            p
        }),
        ("V=32 (Clos territory)", {
            let mut p = RouterParams::paper();
            p.gs_vcs = 32;
            p
        }),
        ("W=64", {
            let mut p = RouterParams::paper();
            p.flit_data_bits = 64;
            p
        }),
        ("D=4 (deeper buffers)", {
            let mut p = RouterParams::paper();
            p.buffer_depth = 4;
            p
        }),
    ];
    let rows = run_parallel(&grid, args.threads, |_, (name, p)| {
        let b = AreaModel::cmos_120nm().breakdown(p);
        vec![
            name.to_string(),
            format!("{:.3}", b.total_mm2()),
            format!("{:.2}x", b.total_um2() / base.total_um2()),
            format!("{:.3}", b.switching / 1e6),
            format!("{:.3}", b.vc_control / 1e6),
            format!("{:.3}", b.vc_buffers / 1e6),
        ]
    });
    for row in rows {
        t.add_row(row);
    }
    print!("{t}");

    // The Clos motivation: fraction of area spent on the unlock-wire
    // switch as V grows.
    println!("\nVC-control share of total area vs V (Sec. 4.3)\n");
    let mut t = Table::new(vec!["V", "VC control [mm2]", "share of total"]);
    let vs = [8usize, 16, 32, 64];
    let rows = run_parallel(&vs, args.threads, |_, &v| {
        let mut p = RouterParams::paper();
        p.gs_vcs = v;
        let b = AreaModel::cmos_120nm().breakdown(&p);
        vec![
            v.to_string(),
            format!("{:.3}", b.vc_control / 1e6),
            format!("{:.1}%", b.vc_control / b.total_um2() * 100.0),
        ]
    });
    for row in rows {
        t.add_row(row);
    }
    print!("{t}");

    // Idle power: the clockless argument of Sec. 1.
    let power = PowerModel::cmos_120nm();
    let area = base.total_mm2();
    println!("\nIdle power at the paper's router area ({area:.3} mm2):");
    println!(
        "  clockless (leakage only): {:.1} uW — \"zero dynamic power consumption when idle\"",
        power.idle_power_clockless_uw(area)
    );
    println!(
        "  equivalent clocked router (free-running clock tree): {:.0} uW",
        power.idle_power_clocked_uw(area)
    );
    println!(
        "  energy per flit-hop: {:.2} pJ",
        power.flit_hop_energy_pj(&RouterParams::paper())
    );
}
