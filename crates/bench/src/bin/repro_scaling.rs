//! Reproduces the **scaling remarks of Sec. 4.2/4.3** — router area as a
//! function of ports, VCs, flit width and buffer depth (the switching
//! module linear in V, the VC-control wire switch quadratic, motivating
//! the Clos-network suggestion for large V) — and extends them with a
//! **simulated mesh-scaling section**: the same mixed GS + uniform-BE
//! workload run on 4×4 through 32×32 meshes, the axis the paper's
//! "larger networks" discussion implies but never measures.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_scaling`
//! `[-- --threads N] [--smoke] [--region-block]`
//!
//! `--smoke` runs only the 16×16 simulation point (the CI `scaling-smoke`
//! golden). Everything on stdout is deterministic — independent of wall
//! clock, thread count, event-wheel geometry and `--region-block` (which
//! changes only the queue's scan grouping; CI byte-diffs the smoke
//! output with it on and off) — and byte-diffed in CI; wall-clock rates
//! go to stderr.
//!
//! The analytic grid is evaluated through the sweep runner — each design
//! point is an independent job, merged in grid order. (The area model is
//! closed-form, so that part is parallelism for uniformity with the
//! simulation sweeps, not for speed.)

use mango::hw::area::{AreaModel, RouterParams};
use mango::hw::power::PowerModel;
use mango::hw::Table;
use mango::net::{Phase, ScenarioSpec, TemporalSpec, TrafficSpec};
use mango::sim::SimDuration;
use mango_sweep::{auto_gs_pairs, run_parallel, SweepArgs};
use std::time::Instant;

/// One simulated mesh-scaling point: the mixed workload (two
/// center-crossing GS connections at 12 ns CBR plus uniform-random BE
/// background at 300 ns per node) on a `side × side` mesh, measured for
/// `measure_us` (larger meshes get shorter windows to bound runtime; the
/// per-node event density is size-independent, so rates stay comparable).
fn scaling_spec(side: u8, measure_us: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::mesh(side, side, 77)
        .warmup(SimDuration::from_us(2))
        .measure_for(SimDuration::from_us(measure_us));
    let grid = mango::net::Grid::new(side, side);
    for (i, (src, dst)) in auto_gs_pairs(&grid, 2).into_iter().enumerate() {
        spec = spec.gs_flow(mango::net::GsFlowSpec {
            src,
            dst,
            pattern: TemporalSpec::cbr(SimDuration::from_ns(12)),
            name: format!("gs-{i}"),
            window: Default::default(),
            phase: Phase::Measure,
        });
    }
    spec.traffic(
        TrafficSpec::uniform_poisson(SimDuration::from_ns(300))
            .payload(4)
            .named("bg-"),
    )
}

fn main() {
    let mut args = SweepArgs::from_env();
    let region_block = args.rest.iter().any(|a| a == "--region-block");
    args.rest.retain(|a| a != "--region-block");
    args.reject_rest().expect("no extra flags");
    assert!(
        args.csv.is_none() && args.json.is_none(),
        "repro_scaling is table-only; --csv/--json are not supported"
    );
    if args.smoke {
        mesh_scaling_section(&args, region_block, &[(16, 20)]);
        return;
    }
    let model = AreaModel::cmos_120nm();
    let base = model.breakdown(&RouterParams::paper());

    println!("Router area scaling (paper design point = 1.00x)\n");
    let mut t = Table::new(vec![
        "configuration",
        "total [mm2]",
        "vs paper",
        "switching",
        "VC control",
        "buffers",
    ]);
    let grid: Vec<(&str, RouterParams)> = vec![
        ("paper: P=5 V=8 W=32 D=1", RouterParams::paper()),
        ("V=4 (fewer connections)", {
            let mut p = RouterParams::paper();
            p.gs_vcs = 4;
            p
        }),
        ("V=16", {
            let mut p = RouterParams::paper();
            p.gs_vcs = 16;
            p
        }),
        ("V=32 (Clos territory)", {
            let mut p = RouterParams::paper();
            p.gs_vcs = 32;
            p
        }),
        ("W=64", {
            let mut p = RouterParams::paper();
            p.flit_data_bits = 64;
            p
        }),
        ("D=4 (deeper buffers)", {
            let mut p = RouterParams::paper();
            p.buffer_depth = 4;
            p
        }),
    ];
    let rows = run_parallel(&grid, args.threads, |_, (name, p)| {
        let b = AreaModel::cmos_120nm().breakdown(p);
        vec![
            name.to_string(),
            format!("{:.3}", b.total_mm2()),
            format!("{:.2}x", b.total_um2() / base.total_um2()),
            format!("{:.3}", b.switching / 1e6),
            format!("{:.3}", b.vc_control / 1e6),
            format!("{:.3}", b.vc_buffers / 1e6),
        ]
    });
    for row in rows {
        t.add_row(row);
    }
    print!("{t}");

    // The Clos motivation: fraction of area spent on the unlock-wire
    // switch as V grows.
    println!("\nVC-control share of total area vs V (Sec. 4.3)\n");
    let mut t = Table::new(vec!["V", "VC control [mm2]", "share of total"]);
    let vs = [8usize, 16, 32, 64];
    let rows = run_parallel(&vs, args.threads, |_, &v| {
        let mut p = RouterParams::paper();
        p.gs_vcs = v;
        let b = AreaModel::cmos_120nm().breakdown(&p);
        vec![
            v.to_string(),
            format!("{:.3}", b.vc_control / 1e6),
            format!("{:.1}%", b.vc_control / b.total_um2() * 100.0),
        ]
    });
    for row in rows {
        t.add_row(row);
    }
    print!("{t}");

    // Idle power: the clockless argument of Sec. 1.
    let power = PowerModel::cmos_120nm();
    let area = base.total_mm2();
    println!("\nIdle power at the paper's router area ({area:.3} mm2):");
    println!(
        "  clockless (leakage only): {:.1} uW — \"zero dynamic power consumption when idle\"",
        power.idle_power_clockless_uw(area)
    );
    println!(
        "  equivalent clocked router (free-running clock tree): {:.0} uW",
        power.idle_power_clocked_uw(area)
    );
    println!(
        "  energy per flit-hop: {:.2} pJ",
        power.flit_hop_energy_pj(&RouterParams::paper())
    );

    // The mesh axis the ROADMAP scaling track asks for: 4×4 (the paper's
    // repro grid) through 32×32 (the smoke ceiling).
    mesh_scaling_section(&args, region_block, &[(4, 50), (8, 50), (16, 20), (32, 5)]);
}

/// Runs the simulated mesh-scaling points and prints the deterministic
/// results table (stdout) plus wall-clock rates (stderr).
fn mesh_scaling_section(args: &SweepArgs, region_block: bool, points: &[(u8, u64)]) {
    println!(
        "\nMesh scaling (simulated): 2 crossing GS conns @ 12 ns + uniform BE @ 300 ns/node\n"
    );
    let results = run_parallel(points, args.threads, |_, &(side, measure_us)| {
        let mut spec = scaling_spec(side, measure_us);
        if region_block {
            spec = spec.region_block();
        }
        let start = Instant::now();
        let metrics = spec.run();
        (metrics, start.elapsed().as_secs_f64())
    });
    let mut t = Table::new(vec![
        "mesh",
        "window [us]",
        "events",
        "GS [Mflit/s]",
        "GS mean [ns]",
        "GS max [ns]",
        "BE delivered",
        "BE mean [ns]",
    ]);
    for (&(side, measure_us), (m, wall)) in points.iter().zip(&results) {
        t.add_row(vec![
            format!("{side}x{side}"),
            measure_us.to_string(),
            m.events.to_string(),
            format!("{:.1}", m.gs_throughput_m()),
            format!("{:.1}", m.gs(0).mean_ns.expect("GS latency recorded")),
            format!("{:.1}", m.gs(0).max_ns.expect("GS latency recorded")),
            m.be_delivered().to_string(),
            format!("{:.1}", m.be_mean_of_means_ns()),
        ]);
        eprintln!(
            "[{side}x{side}: {} events in {:.2} s -> {:.2} Mevents/s]",
            m.events,
            wall,
            m.events as f64 / wall / 1e6
        );
    }
    print!("{t}");
}
