//! Extension experiment: the classic NoC saturation curve for the BE
//! network — delivered throughput and latency vs offered uniform-random
//! load on a 4×4 mesh. Not a paper figure (MANGO's guarantees are
//! analytic), but the characterization any adopter runs first, and a
//! stress test of the credit-based BE flow control.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_saturation`

use mango::hw::Table;
use mango::net::BeSweep;
use mango::sim::SimDuration;

fn main() {
    println!("BE saturation curve: uniform random traffic, 4x4 mesh, 4-flit packets\n");
    let sweep = BeSweep::default();
    // The BE fabric is fast: with GS idle every link gives BE its full
    // capacity, so uniform-random traffic only saturates once per-node
    // injection approaches the NA's own limit (~199 Mpkt/s for 4-flit
    // packets). Sweep all the way there.
    let gaps: Vec<SimDuration> = [2000, 500, 150, 50, 20, 10, 6]
        .into_iter()
        .map(SimDuration::from_ns)
        .collect();
    let points = sweep.run(&gaps);

    let mut t = Table::new(vec![
        "offered/node [Mpkt/s]",
        "delivered total [Mpkt/s]",
        "mean latency [ns]",
        "worst p99 [ns]",
    ]);
    for p in &points {
        t.add_row(vec![
            format!("{:.2}", p.offered_m),
            format!("{:.1}", p.delivered_m),
            format!("{:.1}", p.mean_ns),
            format!("{:.1}", p.p99_ns),
        ]);
    }
    print!("{t}");

    // Shape checks: linear region then saturation.
    let light = &points[0];
    let heavy = points.last().unwrap();
    let expected_light = light.offered_m * 16.0;
    assert!(
        (light.delivered_m - expected_light).abs() / expected_light < 0.15,
        "light load must deliver ≈ offered"
    );
    assert!(
        heavy.mean_ns > 3.0 * light.mean_ns,
        "latency must climb toward saturation: {:.1} vs {:.1}",
        heavy.mean_ns,
        light.mean_ns
    );
    // Throughput monotonically non-decreasing (no congestion collapse —
    // credit flow control, no drops/retransmits).
    for w in points.windows(2) {
        assert!(
            w[1].delivered_m >= w[0].delivered_m * 0.97,
            "throughput collapse: {:.1} -> {:.1}",
            w[0].delivered_m,
            w[1].delivered_m
        );
    }
    println!(
        "\nsaturation: {:.1} Mpkt/s total ({:.0} Mflit/s incl. headers) with stable throughput past the knee",
        heavy.delivered_m,
        heavy.delivered_m * 4.0
    );
}
