//! Extension experiment: the classic NoC saturation curve for the BE
//! network — delivered throughput and latency vs offered uniform-random
//! load on a 4×4 mesh. Not a paper figure (MANGO's guarantees are
//! analytic), but the characterization any adopter runs first, and a
//! stress test of the credit-based BE flow control.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_saturation`
//! `[-- --threads N] [--smoke] [--csv PATH] [--json PATH]`
//!
//! Each load point is an independent simulation; points fan out across
//! worker threads and merge deterministically — the printed curve is
//! identical for every `--threads` value.

use mango::hw::Table;
use mango::net::{BeSweep, LoadPoint};
use mango::sim::SimDuration;
use mango_sweep::{
    run_parallel, write_csv, write_json, RuntimeInfo, SweepArgs, SweepJob, SweepRecord,
};
use std::time::Instant;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    println!("BE saturation curve: uniform random traffic, 4x4 mesh, 4-flit packets\n");
    let sweep = BeSweep::default();
    // The BE fabric is fast: with GS idle every link gives BE its full
    // capacity, so uniform-random traffic only saturates once per-node
    // injection approaches the NA's own limit (~199 Mpkt/s for 4-flit
    // packets). Sweep all the way there. The smoke grid keeps the curve
    // ends (the shape assertions below need them) and drops the middle.
    let gap_ns: &[u64] = if args.smoke {
        &[2000, 50, 6]
    } else {
        &[2000, 500, 150, 50, 20, 10, 6]
    };
    let gaps: Vec<SimDuration> = gap_ns.iter().copied().map(SimDuration::from_ns).collect();

    let specs: Vec<_> = gaps.iter().map(|&g| sweep.scenario(g)).collect();
    let start = Instant::now();
    let metrics = run_parallel(&specs, args.threads, |_, spec| spec.run());
    let wall = start.elapsed().as_secs_f64();

    let points: Vec<LoadPoint> = gaps
        .iter()
        .zip(&metrics)
        .map(|(gap, m)| LoadPoint {
            offered_m: gap.as_rate_mhz(),
            delivered_m: m.be_throughput_m(),
            mean_ns: m.be_weighted_mean_ns(),
            p99_ns: m.be_p99_worst_ns(),
        })
        .collect();

    let mut t = Table::new(vec![
        "offered/node [Mpkt/s]",
        "delivered total [Mpkt/s]",
        "mean latency [ns]",
        "worst p99 [ns]",
    ]);
    for p in &points {
        t.add_row(vec![
            format!("{:.2}", p.offered_m),
            format!("{:.1}", p.delivered_m),
            format!("{:.1}", p.mean_ns),
            format!("{:.1}", p.p99_ns),
        ]);
    }
    print!("{t}");

    if args.csv.is_some() || args.json.is_some() {
        // Job metadata comes from the scenarios that actually ran (the
        // derived seed in particular), not from re-deriving BeSweep's
        // internals here.
        let records: Vec<SweepRecord> = specs
            .iter()
            .zip(&metrics)
            .enumerate()
            .map(|(id, (spec, m))| {
                SweepRecord::measure(
                    SweepJob {
                        id,
                        topology: spec.topology_spec(),
                        width: spec.width,
                        height: spec.height,
                        gs_conns: 0,
                        be_gap_ns: Some(gaps[id].as_ps() / 1000),
                        pattern: mango::net::PatternKind::Uniform,
                        gs_period_ns: 0,
                        measure_us: sweep.measure.as_ps() / 1_000_000,
                        seed: spec.seed,
                    },
                    m,
                )
            })
            .collect();
        let runtime = RuntimeInfo {
            threads: args.threads,
            wall_seconds: wall,
            total_events: metrics.iter().map(|m| m.events).sum(),
        };
        if let Some(path) = &args.csv {
            write_csv(path, &records).expect("write CSV");
        }
        if let Some(path) = &args.json {
            write_json(path, &records, &runtime).expect("write JSON");
        }
    }

    // Shape checks: linear region then saturation.
    let light = &points[0];
    let heavy = points.last().unwrap();
    let expected_light = light.offered_m * 16.0;
    assert!(
        (light.delivered_m - expected_light).abs() / expected_light < 0.15,
        "light load must deliver ≈ offered"
    );
    assert!(
        heavy.mean_ns > 3.0 * light.mean_ns,
        "latency must climb toward saturation: {:.1} vs {:.1}",
        heavy.mean_ns,
        light.mean_ns
    );
    // Throughput monotonically non-decreasing (no congestion collapse —
    // credit flow control, no drops/retransmits).
    for w in points.windows(2) {
        assert!(
            w[1].delivered_m >= w[0].delivered_m * 0.97,
            "throughput collapse: {:.1} -> {:.1}",
            w[0].delivered_m,
            w[1].delivered_m
        );
    }
    println!(
        "\nsaturation: {:.1} Mpkt/s total ({:.0} Mflit/s incl. headers) with stable throughput past the knee",
        heavy.delivered_m,
        heavy.delivered_m * 4.0
    );
}
