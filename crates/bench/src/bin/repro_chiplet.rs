//! Chiplet extension experiment: **GS guarantees composed across die
//! boundaries**. A 2×2 chiplet package (four 4×4 dies, one global 8×8
//! node grid) carries a GS connection from (1,1) to (6,6) whose XY
//! route crosses *two* D2D boundaries — the x-seam between columns 3|4
//! and the y-seam between rows 3|4. Each crossing adds the D2D extra
//! link delay to the analytic bound ([`ServiceModel::report_along`]
//! walks the actual path), and the experiment validates the composed
//! bound end-to-end: observed worst case ≤ bound under hotspot BE
//! interference, before *and after* a fail-stop fault on one of the
//! boundary links the route depends on.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_chiplet`
//! `[-- --threads N] [--smoke] [--list]`
//!
//! Everything on stdout is deterministic and byte-diffed in CI against
//! `tests/golden/repro_chiplet_smoke.txt` at 1 and 4 worker threads;
//! wall-clock rates go to stderr.

use mango::core::{Direction, RouterConfig, RouterId};
use mango::hw::Table;
use mango::net::{
    xy_route, FaultKind, FaultSchedule, Grid, GsFlowSpec, MeasureBound, NaConfig, PatternKind,
    Phase, ScenarioSpec, TemporalSpec, TopologySpec, TrafficSpec,
};
use mango::qos::{path_extras, report_for, RecoveryOutcome, RecoverySpec, ServiceModel};
use mango::sim::{SimDuration, SimTime};
use mango_sweep::{run_parallel, SweepArgs};
use std::time::Instant;

fn topo() -> TopologySpec {
    TopologySpec::chiplet(2, 2, 4, 4)
}
const SIDE: u8 = 8;
const SEED: u64 = 23;
const GS_PERIOD_NS: u64 = 15;

fn src() -> RouterId {
    RouterId::new(1, 1)
}
fn dst() -> RouterId {
    RouterId::new(6, 6)
}

/// The bound-validation scenario: the tagged cross-boundary GS stream
/// over a hotspot BE background at `gap` ns per node (`None` = idle).
fn load_spec(gap_ns: Option<u64>, window_us: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::on_topology(topo(), SEED)
        .warmup(SimDuration::from_us(2))
        .measure_for(SimDuration::from_us(window_us))
        .gs_flow(GsFlowSpec {
            src: src(),
            dst: dst(),
            pattern: TemporalSpec::cbr(SimDuration::from_ns(GS_PERIOD_NS)),
            name: "cross-die".into(),
            window: Default::default(),
            phase: Phase::Measure,
        });
    if let Some(gap) = gap_ns {
        spec = spec.traffic(
            TrafficSpec::new(
                PatternKind::Hotspot.spatial(SIDE, SIDE),
                TemporalSpec::poisson(SimDuration::from_ns(gap)),
            )
            .payload(4)
            .named("bg-"),
        );
    }
    spec
}

/// The recovery phase: managed GS connections (the cross-die stream is
/// the tagged victim) over hotspot BE, with a fail-stop fault on the
/// D2D boundary link `(3,1) -> East` — the x-seam crossing the victim's
/// XY route depends on.
fn recovery_spec(window_us: u64) -> RecoverySpec {
    let mut spec = RecoverySpec::mesh(SIDE, SIDE, SEED);
    spec.base = ScenarioSpec::on_topology(topo(), SEED);
    spec.base.measure = MeasureBound::For(SimDuration::from_us(window_us));
    spec.base = spec.base.traffic(
        TrafficSpec::new(
            PatternKind::Hotspot.spatial(SIDE, SIDE),
            TemporalSpec::poisson(SimDuration::from_ns(800)),
        )
        .payload(4)
        .named("bg-"),
    );
    // The victim plus one intra-die bystander per remaining chip: the
    // fault must break exactly the boundary-crossing connection.
    spec.managed = vec![
        (src(), dst()),
        (RouterId::new(0, 2), RouterId::new(3, 2)),
        (RouterId::new(4, 0), RouterId::new(7, 2)),
        (RouterId::new(1, 5), RouterId::new(2, 7)),
    ];
    spec.gs_period = SimDuration::from_ns(GS_PERIOD_NS);
    spec.faults = FaultSchedule::new(SEED ^ 0xFA_17).with(
        SimTime::ZERO + SimDuration::from_us(window_us / 6),
        FaultKind::LinkDown {
            from: RouterId::new(3, 1),
            dir: Direction::East,
        },
    );
    spec
}

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    assert!(
        args.csv.is_none() && args.json.is_none(),
        "repro_chiplet is table-only; --csv/--json are not supported"
    );
    let window_us: u64 = if args.smoke { 40 } else { 120 };
    let be_gaps: &[Option<u64>] = if args.smoke {
        &[None, Some(400)]
    } else {
        &[None, Some(800), Some(400), Some(150)]
    };

    let grid = Grid::from_spec(&topo());
    let route = xy_route(&grid, src(), dst()).expect("XY route on the package grid");
    let crossings = {
        let mut cur = src();
        let mut n = 0usize;
        for &dir in &route {
            if grid.is_boundary_link(cur, dir) {
                n += 1;
            }
            cur = grid.neighbor(cur, dir).expect("route stays on the grid");
        }
        n
    };
    assert!(crossings >= 2, "the tagged route must cross two die seams");

    if args.list {
        println!(
            "chiplet repro: {} package, tagged GS ({},{})->({},{}) \
             crossing {crossings} D2D seams; {} BE load points + 1 recovery run \
             (listing, not running)",
            topo(),
            src().x,
            src().y,
            dst().x,
            dst().y,
            be_gaps.len()
        );
        return;
    }

    // --- Analytic composition: how the D2D extras enter the bound. ---
    let period = SimDuration::from_ns(GS_PERIOD_NS);
    let cfg = RouterConfig::paper();
    let na = NaConfig::paper();
    let model = ServiceModel::new(&cfg, &na);
    let homogeneous = report_for(&cfg, &na, route.len(), period);
    let composed = model.report_along(&grid, src(), &route, period);
    let (extra_total, extra_max) = path_extras(&grid, src(), &route);
    println!(
        "composed GS bound across die boundaries: {} package, \
         tagged stream ({},{})->({},{})\n",
        topo(),
        src().x,
        src().y,
        dst().x,
        dst().y,
    );
    println!(
        "  route: {} hops, {crossings} D2D crossings (extra {:.1} ns/link, \
         {:.1} ns total)",
        route.len(),
        extra_max.as_ns_f64(),
        extra_total.as_ns_f64()
    );
    println!(
        "  same-die bound: {:.1} ns; composed bound: {:.1} ns (+{:.1} ns); \
         guaranteed bw {:.2} Mflit/s (unchanged: VC loop + 2x extra stays \
         under the service interval)",
        homogeneous.worst_latency_ns().expect("conforming"),
        composed.worst_latency_ns().expect("conforming"),
        composed.worst_latency_ns().unwrap() - homogeneous.worst_latency_ns().unwrap(),
        composed.guaranteed_mfps
    );
    assert!(composed.conforming, "the tagged stream must conform");
    assert_eq!(
        composed.guaranteed_mfps, homogeneous.guaranteed_mfps,
        "2 ns D2D crossings must not cost guaranteed bandwidth"
    );

    // --- Measured: the composed bound holds under hotspot BE load. ---
    println!("\nobserved vs composed bound under hotspot BE interference\n");
    let start = Instant::now();
    let metrics = run_parallel(be_gaps, args.threads, |_, &gap| {
        load_spec(gap, window_us).run()
    });
    let load_wall = start.elapsed();
    let bound_ns = composed.worst_latency_ns().unwrap();
    let mut t = Table::new(vec![
        "BE background",
        "GS [Mflit/s]",
        "GS mean [ns]",
        "GS max [ns]",
        "bound [ns]",
        "obs/bound",
    ]);
    for (&gap, m) in be_gaps.iter().zip(&metrics) {
        let max_ns = m.gs(0).max_ns.expect("GS latency recorded");
        assert!(
            max_ns <= bound_ns,
            "observed {max_ns:.1} ns above the composed bound {bound_ns:.1} ns"
        );
        t.add_row(vec![
            match gap {
                None => "idle".into(),
                Some(g) => format!("hotspot 1 pkt/{g} ns/node"),
            },
            format!("{:.2}", m.gs(0).throughput_m),
            format!("{:.2}", m.gs(0).mean_ns.expect("GS latency recorded")),
            format!("{:.2}", max_ns),
            format!("{bound_ns:.1}"),
            format!("{:.3}", max_ns / bound_ns),
        ]);
    }
    print!("{t}");
    println!("\ncomposed bound held at every load point (observed <= bound)");

    // --- Recovery: a D2D boundary link dies under the tagged route. ---
    let spec = recovery_spec(window_us);
    assert!(
        grid.is_boundary_link(RouterId::new(3, 1), Direction::East),
        "the scheduled fault must hit a D2D boundary link"
    );
    println!(
        "\nboundary-link failure: fail-stop on the D2D link (3,1) -> east, \
         {} managed connections\n",
        spec.managed.len()
    );
    let start = Instant::now();
    let m = spec.run();
    let recovery_wall = start.elapsed();

    let mut t = Table::new(vec![
        "conn",
        "route",
        "hops pre->post",
        "outcome",
        "recover [ns]",
        "lost",
        "bound pre->post [ns]",
        "obs/bound",
    ]);
    for r in &m.records {
        let healed = r.recovered_at.is_some();
        t.add_row(vec![
            r.idx.to_string(),
            format!("({},{})->({},{})", r.src.x, r.src.y, r.dst.x, r.dst.y),
            if healed {
                format!("{}->{}", r.old_hops, r.new_hops)
            } else {
                r.old_hops.to_string()
            },
            r.outcome.map_or("healthy", RecoveryOutcome::name).into(),
            r.recovery_latency
                .map_or("-".into(), |d| format!("{:.1}", d.as_ns_f64())),
            r.flits_lost.to_string(),
            if healed {
                format!(
                    "{}->{}",
                    r.pre_bound_ns.map_or("-".into(), |b| format!("{b:.1}")),
                    r.post_bound_ns.map_or("-".into(), |b| format!("{b:.1}")),
                )
            } else {
                r.pre_bound_ns.map_or("-".into(), |b| format!("{b:.1}"))
            },
            r.post_observed_max_ns
                .zip(r.post_bound_ns)
                .map_or("-".into(), |(o, b)| format!("{:.3}", o / b)),
        ]);
    }
    print!("{t}");

    // The chiplet robustness contract: only the boundary-crossing
    // stream breaks, it heals around the dead seam link, and the
    // recomputed path-aware bound (D2D extras included) still holds.
    assert_eq!(m.broken, 1, "exactly the cross-die connection breaks");
    let victim = &m.records[0];
    assert!(
        matches!(
            victim.outcome,
            Some(RecoveryOutcome::Recovered | RecoveryOutcome::ReroutedLongerPath)
        ),
        "the victim must heal around the dead boundary link: {victim:?}"
    );
    assert!(victim.flits_lost > 0, "in-flight flits cross the dead seam");
    assert_eq!(m.post_bound_violations(), 0, "recomputed bounds must hold");
    for r in m.records.iter().skip(1) {
        assert!(r.outcome.is_none(), "intra-die bystander {} broke", r.idx);
    }
    println!(
        "\nhealed around the dead seam: {} -> {} hops, recomputed composed \
         bound {:.1} ns held (0 violations)",
        victim.old_hops,
        victim.new_hops,
        victim.post_bound_ns.expect("healed connection has a bound"),
    );
    eprintln!(
        "[load axis {:.1} ms on {} threads; recovery run {:.1} ms]",
        load_wall.as_secs_f64() * 1e3,
        args.threads,
        recovery_wall.as_secs_f64() * 1e3
    );
}
