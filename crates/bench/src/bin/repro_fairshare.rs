//! Reproduces the **fair-share guarantee of Sec. 4.4** (ref \[5\]): each of
//! the 8 channels on a link (7 GS VCs + BE) is guaranteed at least 1/8 of
//! link bandwidth; unused allocations are redistributed to contenders.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_fairshare`

use mango::core::RouterId;
use mango::hw::Table;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

fn main() {
    let mut sim = NocSim::paper_mesh(3, 4, 77);
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(2, 1)),
        (RouterId::new(0, 0), RouterId::new(2, 2)),
        (RouterId::new(0, 0), RouterId::new(2, 3)),
        (RouterId::new(1, 0), RouterId::new(2, 0)),
        (RouterId::new(1, 0), RouterId::new(2, 1)),
        (RouterId::new(1, 0), RouterId::new(2, 2)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("7 VCs fit"))
        .collect();
    sim.wait_connections_settled().expect("settles");

    // All 7 GS connections saturated + BE packets over the same link.
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let gs_flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(3)),
                format!("gs-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    let be_flow = sim.add_be_source(
        RouterId::new(1, 0),
        vec![RouterId::new(2, 0)],
        3, // 4 flits per packet including the header
        Pattern::cbr(SimDuration::from_ns(6)),
        "be",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(200));

    let link_m = sim.link_capacity_m();
    let floor = link_m / 8.0;
    println!("Fair-share floors on a fully contended link (7 GS VCs + BE)\n");
    println!("link capacity {link_m:.1} Mflit/s, per-channel floor {floor:.1} Mflit/s\n");
    let mut t = Table::new(vec!["channel", "Mflit/s", "floor x", "holds"]);
    let mut aggregate = 0.0;
    for (i, f) in gs_flows.iter().enumerate() {
        let rate = sim.flow_throughput_m(*f);
        aggregate += rate;
        t.add_row(vec![
            format!("GS vc{i}"),
            format!("{rate:.1}"),
            format!("{:.2}", rate / floor),
            (rate >= 0.95 * floor).to_string(),
        ]);
        assert!(
            rate >= 0.95 * floor,
            "GS channel {i} below floor: {rate:.1}"
        );
    }
    let be_rate = sim.flow_throughput_m(be_flow) * 4.0; // flits incl. header
    aggregate += be_rate;
    t.add_row(vec![
        "BE".to_string(),
        format!("{be_rate:.1}"),
        format!("{:.2}", be_rate / floor),
        (be_rate >= 0.8 * floor).to_string(),
    ]);
    print!("{t}");
    println!(
        "\naggregate {aggregate:.1} Mflit/s = {:.1}% of link capacity",
        aggregate / link_m * 100.0
    );
    assert!(be_rate >= 0.8 * floor, "BE below floor: {be_rate:.1}");

    // Redistribution: stop at 2 contenders — each gets far more than 1/8.
    let mut sim = NocSim::paper_mesh(3, 1, 78);
    let a = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    let b = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    sim.run_for(SimDuration::from_us(2));
    sim.begin_measurement();
    let fa = sim.add_gs_source(
        a,
        Pattern::cbr(SimDuration::from_ns(2)),
        "a",
        EmitWindow::default(),
    );
    let fb = sim.add_gs_source(
        b,
        Pattern::cbr(SimDuration::from_ns(2)),
        "b",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(100));
    let ra = sim.flow_throughput_m(fa);
    let rb = sim.flow_throughput_m(fb);
    println!(
        "\nredistribution with 2 backlogged contenders: {ra:.1} + {rb:.1} Mflit/s ({:.1} and {:.1} floors each)",
        ra / floor,
        rb / floor
    );
    assert!(ra > 2.0 * floor && rb > 2.0 * floor);
}
