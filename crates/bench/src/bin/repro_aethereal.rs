//! Reproduces the **Sec. 6 comparison with ÆTHEREAL**: area, port speed,
//! connection count and the architectural deltas (independent buffering,
//! end-to-end flow control, header overhead), with the bandwidth/latency
//! consequences measured on both models.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_aethereal`

use mango::baseline::{AetherealReference, TdmConfig, TdmNetwork};
use mango::core::RouterId;
use mango::hw::area::{AreaModel, RouterParams};
use mango::hw::{Corner, Table, TimingModel};
use mango::net::Grid;
use mango::sim::{SimDuration, SimTime};
use mango_bench::{funnel_sim, measure_gs};

fn main() {
    let area = AreaModel::cmos_120nm().breakdown(&RouterParams::paper());
    let timing = TimingModel::cmos_120nm();
    let params = RouterParams::paper();

    println!("MANGO vs AEthereal (Sec. 6)\n");
    let mut t = Table::new(vec!["property", "MANGO (model)", "AEthereal (published)"]);
    t.add_row(vec![
        "process".into(),
        "0.12 um std-cell".to_string(),
        "0.13 um + custom FIFOs".into(),
    ]);
    t.add_row(vec![
        "port speed [MHz]".into(),
        format!(
            "{:.0} (wc) / {:.0} (typ)",
            timing.port_speed_mhz(Corner::WorstCase),
            timing.port_speed_mhz(Corner::Typical)
        ),
        format!("{:.0}", AetherealReference::PORT_SPEED_MHZ),
    ]);
    t.add_row(vec![
        "router area [mm2]".into(),
        format!("{:.3} (pre-layout)", area.total_mm2()),
        format!("{:.3} (laid out)", AetherealReference::AREA_MM2),
    ]);
    t.add_row(vec![
        "connections".into(),
        format!("{} (independently buffered)", params.total_gs_buffers()),
        format!("{} (shared buffers)", AetherealReference::CONNECTIONS),
    ]);
    t.add_row(vec![
        "end-to-end flow control".into(),
        "inherent (unlock chain)".to_string(),
        "required (credits)".into(),
    ]);
    t.add_row(vec![
        "routing state".into(),
        "in-router tables".to_string(),
        "in-packet headers".into(),
    ]);
    print!("{t}");

    // Measured consequence 1: payload bandwidth at equal 1/8 reservation.
    let mut tdm = TdmNetwork::new(Grid::new(4, 1), TdmConfig::aethereal());
    let gt = tdm
        .open_gt(RouterId::new(0, 0), RouterId::new(2, 0), 1)
        .expect("slots free");
    let tdm_raw = tdm.gt_raw_bandwidth_fps(gt) / 1e6;
    let tdm_payload = tdm.gt_payload_bandwidth_fps(gt) / 1e6;

    // Throughput under saturation (pins the connection to its floor)...
    let (mut sim, tagged) = funnel_sim(6, 13);
    let mango = measure_gs(&mut sim, tagged, SimDuration::from_ns(6), 10, 150);
    // ...and latency at a stable sub-floor rate (so the number reflects
    // the network, not source backlog).
    let (mut sim_lat, tagged_lat) = funnel_sim(6, 14);
    let mango_lat = measure_gs(&mut sim_lat, tagged_lat, SimDuration::from_ns(11), 10, 150);

    println!("\nGuaranteed bandwidth at 1/8-link reservation (2-hop path)\n");
    let mut t = Table::new(vec!["", "raw [Mflit/s]", "payload [Mflit/s]"]);
    t.add_row(vec![
        "MANGO GS (header-less)".to_string(),
        format!("{:.1}", mango.throughput_m),
        format!("{:.1}", mango.throughput_m),
    ]);
    t.add_row(vec![
        "TDM GT (1 hdr / 3 payload)".to_string(),
        format!("{tdm_raw:.1}"),
        format!("{tdm_payload:.1}"),
    ]);
    print!("{t}");
    println!(
        "\nMANGO payload advantage: {:+.1}%",
        (mango.throughput_m / tdm_payload - 1.0) * 100.0
    );

    // Measured consequence 2: latency coupling (MANGO at a stable
    // sub-floor rate with all other VCs saturated; TDM sampled across
    // arrival phases).
    let tdm_worst = tdm.gt_worst_latency(gt).as_ns_f64();
    let mut sum = 0.0;
    for i in 0..64u64 {
        let ready = SimTime::from_ps(i * 251);
        sum += tdm.gt_delivery(gt, ready).since(ready).as_ns_f64();
    }
    let tdm_mean = sum / 64.0;
    println!("\nlatency on the same path: MANGO mean {:.1} / max {:.1} ns; TDM mean {:.1} / worst {:.1} ns",
        mango_lat.mean_ns, mango_lat.max_ns, tdm_mean, tdm_worst);
    assert!(mango.throughput_m > tdm_payload);
    assert!(
        mango_lat.max_ns < 80.0,
        "MANGO sub-floor latency must stay bounded, got {:.1}",
        mango_lat.max_ns
    );
}
