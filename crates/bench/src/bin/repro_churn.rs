//! Extension experiment: connection churn under admission control — the
//! workload the paper's static figures never exercise. Poisson streams
//! of open→stream→close GS connection requests run against the QoS
//! admission controller on an 8×8 mesh with BE background; every
//! admitted connection streams over the real in-band programming
//! machinery, and its observed worst latency is checked against the
//! analytical [`mango::qos::GuaranteeReport`] bound.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_churn`
//! `[-- --threads N] [--smoke] [--list] [--csv PATH]`
//!
//! The output is deterministic: byte-identical CSV for every
//! `--threads` value (the CI churn determinism gate diffs 1 vs 4).
//! The binary asserts the guarantee contract — zero bound violations —
//! and that the grid demonstrates both scale (≥ 800 requests in one
//! point) and admission rejections under budget exhaustion.

use mango_sweep::{
    churn_summary_table, run_churn_sweep, write_churn_csv, ChurnSweepSpec, SweepArgs,
};
use std::time::Instant;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    let spec = if args.smoke {
        ChurnSweepSpec::smoke()
    } else {
        ChurnSweepSpec::repro()
    };
    let grid_name = if args.smoke { "smoke" } else { "repro" };

    if args.list {
        println!(
            "churn sweep: {} grid, {} jobs (listing, not running)",
            grid_name,
            spec.len()
        );
        for job in spec.expand() {
            println!("{job}");
        }
        return;
    }

    println!(
        "connection churn: {} grid, {} jobs on {} threads\n",
        grid_name,
        spec.len(),
        args.threads
    );
    let start = Instant::now();
    let records = run_churn_sweep(&spec, args.threads);
    let wall = start.elapsed().as_secs_f64();

    print!("{}", churn_summary_table(&records));
    let events: u64 = records.iter().map(|r| r.events).sum();
    println!(
        "\n{} jobs, {} events in {:.2} s on {} threads  ->  {:.2} Mevents/s",
        records.len(),
        events,
        wall,
        args.threads,
        events as f64 / wall / 1e6
    );

    // The guarantee contract: no admitted, rate-conforming connection
    // may ever exceed its analytical latency bound.
    for r in &records {
        assert_eq!(
            r.bound_violations, 0,
            "job {}: observed latency above the analytical bound",
            r.job.id
        );
        assert!(
            r.requests > 0 && r.admitted > 0,
            "job {} did nothing",
            r.job.id
        );
        assert!(r.closed > 0, "job {}: no teardown completed", r.job.id);
        assert!(
            r.worst_bound_ratio <= 1.0,
            "job {}: worst observed/bound ratio {}",
            r.job.id,
            r.worst_bound_ratio
        );
    }
    // Scale: at least one point runs a ≥800-connection open/close
    // workload (the full grid's fast-arrival points issue well over
    // 1000 requests on the 8×8 mesh).
    let max_requests = records.iter().map(|r| r.requests).max().unwrap_or(0);
    let scale_floor = if args.smoke { 40 } else { 800 };
    assert!(
        max_requests >= scale_floor,
        "largest point issued only {max_requests} requests (need ≥ {scale_floor})"
    );
    // Budget exhaustion must show up as rejections, not panics.
    let rejected: u64 = records.iter().map(|r| r.rejected).sum();
    assert!(
        rejected > 0,
        "no sweep point demonstrated admission rejection"
    );
    println!(
        "guarantees held: 0 bound violations; scale point {} requests; {} rejections across the grid",
        max_requests, rejected
    );

    if let Some(path) = &args.csv {
        write_churn_csv(path, &records).expect("write CSV");
        println!("wrote {}", path.display());
    }
    if args.json.is_some() {
        eprintln!("note: repro_churn has no JSON writer; use --csv");
    }
}
