//! Reproduces the **Fig. 3 vs Fig. 4** contrast: the generic
//! output-buffered VC router congests under cross-traffic (shared,
//! arbitrated switch — "unsuitable for providing service guarantees"),
//! while the MANGO GS router's non-blocking switching keeps a tagged
//! connection's latency flat under the same pressure.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_fig4_nonblocking`

use mango::baseline::{run_generic_congestion, GenericConfig};
use mango::hw::Table;
use mango::sim::SimDuration;
use mango_bench::{funnel_sim, measure_gs};

fn main() {
    println!("Tagged flow latency vs cross-traffic: generic router (Fig. 3) vs MANGO (Fig. 4)\n");
    let mut t = Table::new(vec![
        "cross-traffic",
        "generic mean [ns]",
        "generic max [ns]",
        "MANGO mean [ns]",
        "MANGO max [ns]",
    ]);

    // Load points: generic router background load fraction vs MANGO
    // number of saturated contender VCs (0..6 of 6).
    let points = [(0.0, 0usize), (0.3, 2), (0.6, 4), (0.8, 6)];
    let mut rows = Vec::new();
    for (load, contenders) in points {
        let generic = run_generic_congestion(
            GenericConfig {
                cycle: SimDuration::from_ps(1258),
                tagged_period: SimDuration::from_ns(11),
                background_load: load,
                seed: 3,
            },
            SimDuration::from_us(150),
        );
        // Tagged at 91 Mflit/s — just under its 1/8 floor, so the queue
        // is stable and latency reflects arbitration, not source backlog.
        let (mut sim, tagged) = funnel_sim(contenders, 3);
        let mango = measure_gs(&mut sim, tagged, SimDuration::from_ns(11), 10, 150);
        let g_mean = generic.mean().unwrap().as_ns_f64();
        let g_max = generic.max().unwrap().as_ns_f64();
        t.add_row(vec![
            format!("{:.0}% / {} VCs", load * 100.0, contenders),
            format!("{g_mean:.2}"),
            format!("{g_max:.2}"),
            format!("{:.2}", mango.mean_ns),
            format!("{:.2}", mango.max_ns),
        ]);
        rows.push((g_mean, g_max, mango.mean_ns, mango.max_ns));
    }
    print!("{t}");

    let (g0, _, m0, _) = rows[0];
    let (g3, _, m3, m3max) = rows[rows.len() - 1];
    println!(
        "\ngeneric router mean latency grew {:.1}x from idle to heavy load",
        g3 / g0
    );
    println!(
        "MANGO tagged-connection mean latency grew {:.2}x (bounded by the fair-share round)",
        m3 / m0
    );
    // The analytic per-hop bound: fair-share round + forward path.
    let per_hop_bound_ns = 8.0 * 1.258 + 0.95 + 0.18 + 0.62;
    let bound = 3.0 * per_hop_bound_ns + 20.0; // 2 hops + injection, generous
    println!("MANGO worst observed {m3max:.1} ns vs analytic bound {bound:.1} ns");
    assert!(g3 > 3.0 * g0, "generic must congest");
    assert!(m3 < 2.0 * m0, "MANGO must stay bounded");
    assert!(m3max <= bound, "MANGO hard bound violated");
}
