//! Reproduces **Fig. 7 / Sec. 5** (the BE router): source-routed packets
//! follow their headers hop by hop up to the 15-hop limit; latency grows
//! linearly with hops; outputs arbitrate fairly between inputs while
//! keeping packet coherency.
//!
//! Run with: `cargo run --release -p mango_bench --bin repro_fig7_be`
//! `[-- --threads N] [--smoke]`
//!
//! All six scenarios (five hop counts + the fan-in arbitration test) are
//! independent simulations fanned out over worker threads; the printed
//! tables are identical for every `--threads` value. This job list is
//! the "Fig. 7 grid" the ROADMAP's parallel-sweep wall-clock numbers
//! are measured on.

use mango::core::RouterId;
use mango::hw::Table;
use mango::net::{
    EmitWindow, Phase, ScenarioMetrics, ScenarioSpec, SpatialPattern, TemporalSpec, TrafficSpec,
};
use mango::sim::SimDuration;
use mango_sweep::{run_parallel, SweepArgs};
use std::time::Instant;

/// Latency-vs-hops point: one BE flow across an idle 16×1 line.
fn hop_scenario(hops: u8, limit: u64) -> ScenarioSpec {
    ScenarioSpec::mesh(16, 1, 21)
        .measure_to_quiescence()
        .traffic(
            TrafficSpec::new(
                SpatialPattern::FixedPool(vec![RouterId::new(hops, 0)]),
                TemporalSpec::cbr(SimDuration::from_ns(100)),
            )
            .from_node(RouterId::new(0, 0))
            .payload(3)
            .named("hops")
            .phase(Phase::Measure)
            .window(EmitWindow {
                limit: Some(limit),
                ..Default::default()
            }),
        )
}

/// Fan-in fairness: four saturating senders into one sink on a 3×3 mesh.
fn fair_scenario(senders: &[RouterId], sink: RouterId) -> ScenarioSpec {
    let mut spec = ScenarioSpec::mesh(3, 3, 23)
        .warmup(SimDuration::from_us(5))
        .measure_for(SimDuration::from_us(150));
    for s in senders {
        spec = spec.traffic(
            TrafficSpec::new(
                SpatialPattern::FixedPool(vec![sink]),
                TemporalSpec::cbr(SimDuration::from_ns(8)),
            )
            .from_node(*s)
            .payload(3)
            .named(format!("from-{s}"))
            .phase(Phase::Measure),
        );
    }
    spec
}

fn main() {
    let args = SweepArgs::from_env();
    args.reject_rest().expect("no extra flags");
    assert!(
        args.csv.is_none() && args.json.is_none(),
        "repro_fig7_be has no record output; --csv/--json are not supported"
    );
    let hop_counts: &[u8] = if args.smoke {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8, 15]
    };
    let limit = 300;
    let sink = RouterId::new(1, 1);
    let senders = [
        RouterId::new(0, 1),
        RouterId::new(2, 1),
        RouterId::new(1, 0),
        RouterId::new(1, 2),
    ];

    // One job list: the hop sweep plus the arbitration scenario.
    let mut specs: Vec<ScenarioSpec> = hop_counts.iter().map(|&h| hop_scenario(h, limit)).collect();
    specs.push(fair_scenario(&senders, sink));
    let start = Instant::now();
    let metrics: Vec<ScenarioMetrics> = run_parallel(&specs, args.threads, |_, s| s.run());
    let wall = start.elapsed();
    let (hop_metrics, fair_metrics) = metrics.split_at(hop_counts.len());

    // Latency vs hop count on a 16x1 mesh, idle network.
    println!("BE packet latency vs hop count (4-flit packets, idle network)\n");
    let mut t = Table::new(vec!["hops", "mean [ns]", "per-hop delta [ns]"]);
    let mut prev: Option<(u8, f64)> = None;
    let mut deltas = Vec::new();
    for (&hops, m) in hop_counts.iter().zip(hop_metrics) {
        let s = m.be(0);
        assert_eq!(s.delivered, limit, "lossless at {hops} hops");
        let mean = s.mean_ns.expect("latency recorded");
        let delta = prev.map(|(ph, pm)| (mean - pm) / f64::from(hops - ph));
        if let Some(d) = delta {
            deltas.push(d);
        }
        t.add_row(vec![
            hops.to_string(),
            format!("{mean:.2}"),
            delta.map_or("-".into(), |d| format!("{d:.2}")),
        ]);
        prev = Some((hops, mean));
    }
    print!("{t}");
    let spread = deltas
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &d| (lo.min(d), hi.max(d)));
    println!(
        "\nper-hop delta spread: {:.2}..{:.2} ns (constant per-hop cost)",
        spread.0, spread.1
    );
    assert!(
        (spread.1 - spread.0) / spread.0 < 0.25,
        "per-hop cost must be ~constant"
    );

    // Fair input arbitration: four senders into one sink, equal service.
    println!("\nFair arbitration: 4 senders -> 1 sink, saturating offered load\n");
    let rates: Vec<f64> = (0..senders.len())
        .map(|i| fair_metrics[0].be(i).throughput_m)
        .collect();
    let mut t = Table::new(vec!["sender", "Mpkt/s"]);
    for (s, r) in senders.iter().zip(&rates) {
        t.add_row(vec![s.to_string(), format!("{r:.2}")]);
    }
    print!("{t}");
    let (lo, hi) = rates
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    println!(
        "\nmin/max sender rate ratio: {:.3} (1.0 = perfectly fair)",
        lo / hi
    );
    assert!(lo / hi > 0.9, "BE output arbitration must be fair");
    eprintln!(
        "[fig7 grid: {} scenarios on {} threads in {:.1} ms]",
        specs.len(),
        args.threads,
        wall.as_secs_f64() * 1e3
    );
}
