//! Reproduces **Fig. 7 / Sec. 5** (the BE router): source-routed packets
//! follow their headers hop by hop up to the 15-hop limit; latency grows
//! linearly with hops; outputs arbitrate fairly between inputs while
//! keeping packet coherency.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_fig7_be`

use mango::core::RouterId;
use mango::hw::Table;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

fn main() {
    // Latency vs hop count on a 16x1 mesh, idle network.
    println!("BE packet latency vs hop count (4-flit packets, idle network)\n");
    let mut t = Table::new(vec!["hops", "mean [ns]", "per-hop delta [ns]"]);
    let mut prev: Option<f64> = None;
    let mut deltas = Vec::new();
    for hops in [1u8, 2, 4, 8, 15] {
        let mut sim = NocSim::paper_mesh(16, 1, 21);
        sim.begin_measurement();
        let flow = sim.add_be_source(
            RouterId::new(0, 0),
            vec![RouterId::new(hops, 0)],
            3,
            Pattern::cbr(SimDuration::from_ns(100)),
            "hops",
            EmitWindow {
                limit: Some(300),
                ..Default::default()
            },
        );
        sim.run_to_quiescence();
        let s = sim.flow(flow);
        assert_eq!(s.delivered, 300, "lossless at {hops} hops");
        let mean = s.latency.mean().unwrap().as_ns_f64();
        let delta = prev.map(|p| (mean - p) / (hops as f64 - prev_hops(hops)));
        if let Some(d) = delta {
            deltas.push(d);
        }
        t.add_row(vec![
            hops.to_string(),
            format!("{mean:.2}"),
            delta.map_or("-".into(), |d| format!("{d:.2}")),
        ]);
        prev = Some(mean);
    }
    print!("{t}");
    let spread = deltas
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &d| (lo.min(d), hi.max(d)));
    println!(
        "\nper-hop delta spread: {:.2}..{:.2} ns (constant per-hop cost)",
        spread.0, spread.1
    );
    assert!((spread.1 - spread.0) / spread.0 < 0.25, "per-hop cost must be ~constant");

    // Fair input arbitration: four senders into one sink, equal service.
    println!("\nFair arbitration: 4 senders -> 1 sink, saturating offered load\n");
    let mut sim = NocSim::paper_mesh(3, 3, 23);
    let sink = RouterId::new(1, 1);
    let senders = [
        RouterId::new(0, 1),
        RouterId::new(2, 1),
        RouterId::new(1, 0),
        RouterId::new(1, 2),
    ];
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = senders
        .iter()
        .map(|s| {
            sim.add_be_source(
                *s,
                vec![sink],
                3,
                Pattern::cbr(SimDuration::from_ns(8)),
                format!("from-{s}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(150));
    let rates: Vec<f64> = flows.iter().map(|f| sim.flow_throughput_m(*f)).collect();
    let mut t = Table::new(vec!["sender", "Mpkt/s"]);
    for (s, r) in senders.iter().zip(&rates) {
        t.add_row(vec![s.to_string(), format!("{r:.2}")]);
    }
    print!("{t}");
    let (lo, hi) = rates
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &r| (lo.min(r), hi.max(r)));
    println!("\nmin/max sender rate ratio: {:.3} (1.0 = perfectly fair)", lo / hi);
    assert!(lo / hi > 0.9, "BE output arbitration must be fair");
}

fn prev_hops(current: u8) -> f64 {
    match current {
        2 => 1.0,
        4 => 2.0,
        8 => 4.0,
        15 => 8.0,
        _ => 0.0,
    }
}
