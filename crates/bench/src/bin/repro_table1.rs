//! Reproduces **Table 1**: per-module area of the MANGO router
//! (0.12 µm standard cells, 5×5 ports, 8 VCs/port, 32-bit flits).
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_table1`

use mango::hw::area::{AreaModel, RouterParams, Table1};

fn main() {
    let params = RouterParams::paper();
    let breakdown = AreaModel::cmos_120nm().breakdown(&params);
    println!("Table 1: area usage in the MANGO router (model vs paper)\n");
    print!("{}", breakdown.to_table(true));
    println!();
    println!(
        "switching + VC buffers = {:.1}% of total (paper: \"more than half\")",
        (breakdown.switching + breakdown.vc_buffers) / breakdown.total_um2() * 100.0
    );
    let err = (breakdown.total_mm2() - Table1::PAPER_TOTAL).abs() / Table1::PAPER_TOTAL;
    println!("total error vs paper: {:.2}%", err * 100.0);
    assert!(err < 0.02, "Table 1 reproduction drifted");
}
