//! Runs every reproduction binary in sequence — the full experimental
//! record behind `EXPERIMENTS.md`.
//!
//! Run with: `cargo run --release -p mango-bench --bin repro_all`

use std::process::Command;

fn main() {
    let repros = [
        "repro_table1",
        "repro_port_speed",
        "repro_fig4_nonblocking",
        "repro_fig5_switching",
        "repro_fig6_vc_control",
        "repro_fig7_be",
        "repro_fig8_gs_vs_be",
        "repro_fairshare",
        "repro_alg_latency",
        "repro_aethereal",
        "repro_scaling",
        "repro_saturation",
        "repro_pipelined_links",
        "repro_buffer_depth",
        "repro_di_links",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in repros {
        println!("\n{:=^78}", format!(" {name} "));
        let status = Command::new(dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e} (build all bins first)"));
        if !status.success() {
            failures.push(name);
        }
    }
    println!("\n{:=^78}", " summary ");
    if failures.is_empty() {
        println!("all {} reproductions passed", repros.len());
    } else {
        println!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
