//! Shared harness for the benchmark and reproduction binaries.
//!
//! Every table and figure of the paper has a `repro_*` binary in
//! `src/bin/` that regenerates it (see `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for recorded paper-vs-measured results).
//! This library holds the experiment set-ups they share.

use mango::core::RouterId;
use mango::net::{EmitWindow, NocSim, Pattern, SpatialPattern};
use mango::sim::SimDuration;

/// Result of driving one GS connection under a given environment.
#[derive(Debug, Clone)]
pub struct GsRun {
    /// Delivered throughput, Mflit/s.
    pub throughput_m: f64,
    /// Mean end-to-end latency, ns.
    pub mean_ns: f64,
    /// 99th-percentile latency, ns.
    pub p99_ns: f64,
    /// Worst observed latency, ns.
    pub max_ns: f64,
    /// Jitter (max − min), ns.
    pub jitter_ns: f64,
}

/// The funnel geometry: on an 8×1 line, a tagged connection
/// (0,0)→(2,0) plus up to 6 contender connections all crossing link
/// (1,0)→East (the paper's full-contention scenario: 7 GS VCs + BE on
/// one link). Contenders terminate at spread-out destinations so that
/// **only the head link saturates** — downstream links stay below
/// capacity and do not add second-order arbitration waits to the
/// measurement.
///
/// Returns the sim (connections settled, contenders saturated at
/// ~333 Mflit/s offered each) and the tagged connection id.
pub fn funnel_sim(contenders: usize, seed: u64) -> (NocSim, mango::core::ConnectionId) {
    assert!(contenders <= 6, "6 contender VCs + tagged fill the link");
    let mut sim = NocSim::paper_mesh(8, 1, seed);
    let tagged = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .expect("tagged connection");
    // Contenders: 3 more from (0,0), 3 from (1,0) — all share (1,0)→E.
    let plan = [
        (RouterId::new(0, 0), RouterId::new(3, 0)),
        (RouterId::new(0, 0), RouterId::new(4, 0)),
        (RouterId::new(0, 0), RouterId::new(5, 0)),
        (RouterId::new(1, 0), RouterId::new(6, 0)),
        (RouterId::new(1, 0), RouterId::new(7, 0)),
        (RouterId::new(1, 0), RouterId::new(3, 0)),
    ];
    let cross: Vec<_> = plan[..contenders]
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("contender fits"))
        .collect();
    sim.wait_connections_settled().expect("programming settles");
    for (i, c) in cross.iter().enumerate() {
        sim.add_gs_source(
            *c,
            Pattern::cbr(SimDuration::from_ns(3)),
            format!("cross-{i}"),
            EmitWindow::default(),
        );
    }
    (sim, tagged)
}

/// Measures a GS connection at `period` per flit for `measure_us`, after
/// `warmup_us` of warmup.
pub fn measure_gs(
    sim: &mut NocSim,
    conn: mango::core::ConnectionId,
    period: SimDuration,
    warmup_us: u64,
    measure_us: u64,
) -> GsRun {
    sim.run_for(SimDuration::from_us(warmup_us));
    sim.begin_measurement();
    let flow = sim.add_gs_source(conn, Pattern::cbr(period), "tagged", EmitWindow::default());
    sim.run_for(SimDuration::from_us(measure_us));
    let stats = sim.flow(flow);
    GsRun {
        throughput_m: sim.flow_throughput_m(flow),
        mean_ns: stats.latency.mean().map_or(0.0, |d| d.as_ns_f64()),
        p99_ns: stats.latency.quantile(0.99).map_or(0.0, |d| d.as_ns_f64()),
        max_ns: stats.latency.max().map_or(0.0, |d| d.as_ns_f64()),
        jitter_ns: stats.latency.jitter().map_or(0.0, |d| d.as_ns_f64()),
    }
}

/// The `network_sim` benchmark scenario: a 4×4 mesh with four crossing
/// GS connections at 12 ns per flit plus uniform-random BE background at
/// 300 ns per node — the mixed workload the simulator performance track
/// is measured on.
pub fn mixed_mesh_4x4(seed: u64) -> NocSim {
    mixed_mesh(4, 4, seed)
}

/// The mixed workload generalized to a `width × height` mesh (the
/// mesh-scaling probe): four corner-crossing GS connections at 12 ns per
/// flit — the same placement `mixed_mesh_4x4` uses, scaled to the mesh —
/// plus uniform-random BE background at 300 ns per node. Requires
/// `width, height ≥ 4` so the two connection rings stay distinct.
///
/// For `(4, 4)` this reproduces `mixed_mesh_4x4` construction step for
/// construction step, so the two probes are directly comparable.
pub fn mixed_mesh(width: u8, height: u8, seed: u64) -> NocSim {
    mixed_mesh_geom(width, height, seed, None)
}

/// [`mixed_mesh`] with an explicit event-wheel geometry override
/// (`None` = the scenario heuristic) — the wheel-geometry validation
/// probe behind `sim_rate --buckets`.
pub fn mixed_mesh_geom(
    width: u8,
    height: u8,
    seed: u64,
    geometry: Option<mango::sim::WheelGeometry>,
) -> NocSim {
    assert!(
        width >= 4 && height >= 4,
        "mixed_mesh needs a mesh of at least 4x4"
    );
    use mango::core::RouterConfig;
    use mango::net::{Grid, NaConfig, Network};
    let network = Network::new(
        Grid::new(width, height),
        RouterConfig::paper(),
        NaConfig::paper(),
    );
    let mut sim = match geometry {
        Some(g) => NocSim::with_geometry(network, seed, g),
        None => NocSim::new(network, seed),
    };
    let (w, h) = (width - 1, height - 1);
    for (s, d) in [
        ((0, 0), (w, h)),
        ((w, 0), (0, h)),
        ((1, 1), (w - 1, h - 1)),
        ((w - 1, 1), (1, h - 1)),
    ] {
        let c = sim
            .open_connection(RouterId::new(s.0, s.1), RouterId::new(d.0, d.1))
            .expect("fits");
        sim.wait_connections_settled().expect("settles");
        sim.add_gs_source(
            c,
            Pattern::cbr(SimDuration::from_ns(12)),
            "gs",
            EmitWindow::default(),
        );
    }
    add_be_background(&mut sim, SimDuration::from_ns(300));
    sim
}

/// Adds uniform-random BE background traffic at `mean_gap` per node.
///
/// Destinations are computed per emission ([`SpatialPattern`]), so the
/// attach is O(N) in mesh size — no materialized pools — while drawing
/// the exact RNG sequence the historical pool-based path did.
pub fn add_be_background(sim: &mut NocSim, mean_gap: SimDuration) {
    let all: Vec<RouterId> = sim.network().grid().ids().collect();
    for node in all {
        sim.add_traffic_source(
            node,
            SpatialPattern::UniformRandom,
            4,
            Pattern::poisson(mean_gap),
            format!("bg-{node}"),
            EmitWindow::default(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funnel_sim_builds_and_measures() {
        let (mut sim, tagged) = funnel_sim(6, 1);
        let run = measure_gs(&mut sim, tagged, SimDuration::from_ns(10), 2, 20);
        assert!(run.throughput_m > 0.0);
    }

    #[test]
    fn be_background_attaches() {
        let mut sim = NocSim::paper_mesh(2, 2, 2);
        add_be_background(&mut sim, SimDuration::from_us(1));
        sim.run_for(SimDuration::from_us(10));
        assert!(sim.events_processed() > 0);
    }
}
