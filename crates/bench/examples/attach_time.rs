//! Background-attach cost probe: wall time to attach the uniform-random
//! BE background to an idle mesh (the setup cost the computed-pattern
//! redesign takes from O(N²) to O(N) at N nodes).
//!
//! Run with: `cargo run --release -p mango_bench --example attach_time [SIDE ...]`

use mango::net::NocSim;
use mango::sim::SimDuration;
use mango_bench::add_be_background;
use std::time::Instant;

fn main() {
    let sides: Vec<u8> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("mesh side"))
        .collect();
    let sides = if sides.is_empty() {
        vec![8, 16, 32]
    } else {
        sides
    };
    for side in sides {
        // Best of 5: attach is setup-path, but keep the probe noise-proof.
        let mut best = f64::MAX;
        for seed in 0..5 {
            let mut sim = NocSim::paper_mesh(side, side, seed);
            let start = Instant::now();
            add_be_background(&mut sim, SimDuration::from_ns(300));
            best = best.min(start.elapsed().as_secs_f64());
        }
        println!("{side}x{side}: attach best {:.3} ms", best * 1e3);
    }
}
