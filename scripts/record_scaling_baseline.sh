#!/usr/bin/env bash
# Records BENCH_scaling.json: the mesh-scaling baseline of the mixed
# `sim_rate` probe — events, best rate, per-event cost and the
# per-event ratio against the 4x4 point, for the default flit layout
# (4x4/8x8/16x16/32x32) and the lean-flit capacity build
# (4x4/16x16/32x32). The checked-in copy is a point-in-time record from
# the container it was produced on (host in the file); the weekly sweep
# workflow refreshes it on the CI host, where run-to-run noise is lower.
#
# Usage: scripts/record_scaling_baseline.sh
#   SIM_US (default 20) and REPEATS (default 3) override the window.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_scaling.json
sim_us=${SIM_US:-20}
repeats=${REPEATS:-3}

cargo build --release -q -p mango_bench --bin sim_rate
default_rows=$(for m in 4 8 16 32; do
  target/release/sim_rate "$sim_us" "$repeats" --mesh "$m" --json
done | paste -sd, -)

# The lean-flit build gets its own target dir so it does not thrash the
# default build cache.
cargo build --release -q -p mango_bench --features lean-flit \
  --bin sim_rate --target-dir target/lean
lean_rows=$(for m in 4 16 32; do
  target/lean/release/sim_rate "$sim_us" "$repeats" --mesh "$m" --json
done | paste -sd, -)

jq -n \
  --argjson default "[$default_rows]" \
  --argjson lean "[$lean_rows]" \
  --arg host "$(uname -sm), $(nproc) core(s)" \
  --argjson sim_us "$sim_us" \
  --argjson repeats "$repeats" \
  '{
    probe: "sim_rate mixed mesh workload (4 GS conns + uniform BE)",
    methodology: "best of REPEATS fresh runs per mesh; 4x4 reference timed in the same invocation for ratio_vs_4x4",
    host: $host,
    sim_us: $sim_us,
    repeats: $repeats,
    default_flit: $default,
    lean_flit: $lean
  }' > "$out"

echo "wrote $out:" >&2
jq -r '.default_flit[] | "  \(.mesh)x\(.mesh): \(.best_mevents_per_sec) Mev/s, \(.per_event_ns) ns/event, \(.ratio_vs_4x4)x vs 4x4"' "$out" >&2
