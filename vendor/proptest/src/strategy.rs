//! Value-generation strategies: the `Strategy` trait and the combinators
//! the workspace uses (`prop_map`, ranges, tuples, `Just`, unions,
//! `any::<T>()`, vectors).

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// Generates values of an output type from the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        (**self).new_value(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range_usize(self.options.len());
        self.options[i].new_value(rng)
    }
}

/// `Vec` generation: length drawn from a range, then that many elements.
#[derive(Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, len: Range<usize>) -> Self {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.gen_range_usize(span);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen_range_u64(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn new_value(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_range_u64(self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Any")
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
