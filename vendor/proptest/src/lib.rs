//! A self-contained stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing crate, implementing the subset of its API this
//! workspace uses: the `proptest!` macro, `Strategy` with `prop_map`,
//! ranges and `any::<T>()` as strategies, tuples, `Just`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched. Differences from real proptest:
//!
//! * **No shrinking** — a failing case panics with its case number; rerun
//!   with the same binary to reproduce (generation is deterministic, the
//!   RNG is seeded from the test's module path and name).
//! * Value generation is simple uniform sampling, not proptest's
//!   bias-toward-edge-cases regime.

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec(element, len_range)` support.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, len)
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

/// Runs every `fn name(arg in strategy, ..) { body }` item as a `#[test]`
/// over `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(16).saturating_add(1024),
                        "too many cases rejected by prop_assume!"
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);
                    )+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match result {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(e) if e.is_reject() => {}
                        ::std::result::Result::Err(e) => {
                            panic!("proptest case {} failed: {}", attempts, e)
                        }
                    }
                }
            }
        )*
    };
}

/// Like `assert!` but fails the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Like `assert_eq!` but fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Like `assert_ne!` but fails the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Discards the current generated case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Picks one of the given strategies uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}
