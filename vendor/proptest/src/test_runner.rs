//! Test-runner support types: configuration, case errors, and the
//! deterministic RNG behind value generation.

use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: skip, generate another case.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// An input rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }

    /// True for input rejections.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "input rejected"),
        }
    }
}

/// Deterministic splitmix64 RNG; the seed is derived from the test name so
/// every run of a given test explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from `name` (typically `module_path!() :: test_name`).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, then a splitmix scramble so similar names
        // diverge immediately.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Modulo bias is irrelevant at property-test scale.
        self.next_u64() % bound
    }

    /// Uniform `usize` in `0..bound` (`bound > 0`).
    pub fn gen_range_usize(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }
}
