//! A self-contained stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness, implementing the subset of its API this workspace
//! uses (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`).
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this stub keeps the bench sources unchanged
//! while providing honest wall-clock measurements: each benchmark is
//! auto-calibrated so one sample takes a meaningful slice of time, then
//! `sample_size` samples are collected and the median / mean / min are
//! reported in adaptive units.
//!
//! It is intentionally *not* statistically rigorous (no outlier analysis,
//! no regression bookkeeping) — it exists so `cargo bench` produces stable,
//! comparable numbers offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export used by benches via `criterion::black_box` in the real crate.
pub use std::hint::black_box;

/// Target wall-clock time for one sample, before dividing into iterations.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);

/// The benchmark manager: holds global settings and the CLI filter.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench executables as `<bin> --bench [filter]`;
        // ignore flags, treat the first free argument as a substring
        // filter like the real criterion does.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named parameterized benchmark id (`group/function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_benchmark_id());
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        run_benchmark(&full_id, samples, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is per-benchmark; nothing left to do).
    pub fn finish(self) {}
}

/// Conversion of the various id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// The `function[/parameter]` part of the full benchmark id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; times the routine it is given.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(full_id: &str, samples: usize, f: &mut F) {
    // Calibrate: grow the per-sample iteration count until one sample
    // costs at least TARGET_SAMPLE_TIME (or a single iteration already
    // exceeds it).
    let mut iters: u64 = 1;
    loop {
        let t = time_one_sample(f, iters);
        if t >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
            break;
        }
        if t < Duration::from_micros(50) {
            iters = iters.saturating_mul(16);
        } else {
            // Overshoot slightly so the next probe usually terminates.
            let scale = TARGET_SAMPLE_TIME.as_secs_f64() / t.as_secs_f64() * 1.2;
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| time_one_sample(f, iters).as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter[0];

    println!(
        "{:<44} time: [median {} | mean {} | min {}]  ({} samples x {} iters)",
        full_id,
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        samples,
        iters
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
