//! Integration tests for connection setup, teardown and resource
//! management through the BE-packet programming interface.

use mango::core::RouterId;
use mango::net::{ConnError, ConnState, EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

/// Opening a connection programs exactly the routers on its path, and all
/// programming is acknowledged.
#[test]
fn programming_reaches_exactly_the_path_routers() {
    let mut sim = NocSim::paper_mesh(4, 4, 201);
    let conn = sim
        .open_connection(RouterId::new(0, 3), RouterId::new(3, 0))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    assert_eq!(sim.connection_state(conn), Some(ConnState::Open));

    let record = sim.network().connections().get(conn).unwrap().clone();
    assert_eq!(record.hops(), 6);
    let mut programmed = 0;
    let mut with_entries = 0;
    for node in sim.network().nodes() {
        let r = &node.router;
        programmed += r.stats().prog_packets;
        if r.table().steer_entries() + r.table().unlock_entries() > 0 {
            with_entries += 1;
        }
        assert_eq!(r.stats().prog_errors, 0, "router {} saw bad config", r.id());
    }
    assert_eq!(programmed, 6, "one config packet per remote path router");
    assert_eq!(with_entries, 7, "source + 6 remote routers hold entries");
}

/// Open connections until the path resources run out; the error names the
/// bottleneck.
#[test]
fn resource_exhaustion_is_reported_cleanly() {
    let mut sim = NocSim::paper_mesh(2, 1, 203);
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(1, 0);
    for _ in 0..4 {
        sim.open_connection(src, dst).unwrap();
    }
    // The 4 local TX interfaces are gone before the 7 VCs.
    assert_eq!(
        sim.open_connection(src, dst),
        Err(ConnError::NoFreeTxIface(src))
    );
    // The reverse direction has its own resources.
    for _ in 0..4 {
        sim.open_connection(dst, src).unwrap();
    }
    sim.wait_connections_settled().unwrap();
    assert!(sim.network().connections().all_settled());
}

/// Full lifecycle with traffic: open → stream → close → reopen reusing
/// the same resources, repeatedly.
#[test]
fn repeated_open_stream_close_cycles() {
    let mut sim = NocSim::paper_mesh(3, 3, 207);
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(2, 2);
    for round in 0..5 {
        let conn = sim.open_connection(src, dst).unwrap();
        sim.wait_connections_settled().unwrap();
        let flow = sim.add_gs_source(
            conn,
            Pattern::cbr(SimDuration::from_ns(10)),
            format!("round-{round}"),
            EmitWindow {
                limit: Some(500),
                ..Default::default()
            },
        );
        sim.run_to_quiescence();
        assert_eq!(sim.flow(flow).delivered, 500, "round {round} lost flits");
        sim.close_connection(conn).unwrap();
        sim.wait_connections_settled().unwrap();
        assert_eq!(sim.connection_state(conn), Some(ConnState::Closed));
    }
    // After 5 cycles no stale table entries remain anywhere.
    for node in sim.network().nodes() {
        assert_eq!(node.router.table().steer_entries(), 0);
        assert_eq!(node.router.table().unlock_entries(), 0);
    }
}

/// Many concurrent connections across a mesh, all opening simultaneously
/// while their programming packets share the BE network.
#[test]
fn concurrent_opens_share_the_be_network() {
    let mut sim = NocSim::paper_mesh(4, 4, 211);
    let mut conns = Vec::new();
    // 12 connections with scattered endpoints.
    let endpoints = [
        ((0, 0), (3, 3)),
        ((3, 0), (0, 3)),
        ((1, 0), (2, 3)),
        ((2, 0), (1, 3)),
        ((0, 1), (3, 2)),
        ((3, 1), (0, 2)),
        ((0, 2), (3, 1)),
        ((3, 2), (0, 1)),
        ((1, 3), (2, 0)),
        ((2, 3), (1, 0)),
        ((0, 3), (3, 0)),
        ((3, 3), (0, 0)),
    ];
    for ((sx, sy), (dx, dy)) in endpoints {
        conns.push(
            sim.open_connection(RouterId::new(sx, sy), RouterId::new(dx, dy))
                .unwrap(),
        );
    }
    sim.wait_connections_settled().unwrap();
    for c in &conns {
        assert_eq!(sim.connection_state(*c), Some(ConnState::Open));
    }
    // And they all carry traffic simultaneously.
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(25)),
                format!("conc-{i}"),
                EmitWindow {
                    limit: Some(300),
                    ..Default::default()
                },
            )
        })
        .collect();
    sim.run_to_quiescence();
    for f in flows {
        let s = sim.flow(f);
        assert_eq!(s.delivered, 300, "{} incomplete", s.name);
        assert_eq!(s.sequence_errors, 0);
    }
}

/// Closing requires the open state; double close and closing a
/// still-opening connection fail cleanly.
#[test]
fn close_state_machine_guards() {
    let mut sim = NocSim::paper_mesh(3, 1, 213);
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    // Still opening.
    assert!(matches!(
        sim.close_connection(conn),
        Err(ConnError::BadState(_, ConnState::Opening))
    ));
    sim.wait_connections_settled().unwrap();
    sim.close_connection(conn).unwrap();
    // Already closing.
    assert!(matches!(
        sim.close_connection(conn),
        Err(ConnError::BadState(_, _))
    ));
    sim.wait_connections_settled().unwrap();
    assert_eq!(sim.connection_state(conn), Some(ConnState::Closed));
}

/// Connection setup works while the network is already loaded with BE
/// traffic — config packets are ordinary BE citizens.
#[test]
fn setup_completes_under_be_load() {
    let mut sim = NocSim::paper_mesh(4, 4, 217);
    let all: Vec<RouterId> = sim.network().grid().ids().collect();
    for node in all.clone() {
        let dests: Vec<_> = all.iter().copied().filter(|d| *d != node).collect();
        sim.add_be_source(
            node,
            dests,
            4,
            Pattern::poisson(SimDuration::from_ns(150)),
            format!("bg-{node}"),
            EmitWindow::default(),
        );
    }
    sim.run_for(SimDuration::from_us(10));
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    assert_eq!(sim.connection_state(conn), Some(ConnState::Open));
    // The connection works.
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(12)),
        "after-load",
        EmitWindow {
            limit: Some(1_000),
            ..Default::default()
        },
    );
    sim.run_for(SimDuration::from_us(50));
    assert_eq!(sim.flow(flow).delivered, 1_000);
}
