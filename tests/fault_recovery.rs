//! Fault-recovery invariants: whatever sequence of faults, teardowns
//! and reroutes hits the admission controller and the connection
//! manager, every reserved budget comes back exactly — no leaks, no
//! double frees — and force-closed state is quarantined, not lost.

use mango::core::{Direction, RouterConfig, RouterId};
use mango::net::{Grid, NaConfig};
use mango::qos::{AdmissionController, ConnRequest};
use mango::sim::SimDuration;
use proptest::prelude::*;

const SIDE: u8 = 4;

fn controller() -> AdmissionController {
    AdmissionController::new(
        Grid::new(SIDE, SIDE),
        &RouterConfig::paper(),
        &NaConfig::paper(),
        0.875,
    )
}

fn router() -> impl Strategy<Value = RouterId> {
    (0..SIDE, 0..SIDE).prop_map(|(x, y)| RouterId::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Admit a batch of connections, kill arbitrary links, then put
    /// every survivor through the recovery cycle (release → re-request
    /// over the surviving links → release again). The controller's
    /// budget counters must land back on the pristine snapshot: faults
    /// mask links out of the path search, they never consume budget.
    #[test]
    fn fault_teardown_reroute_returns_budgets_exactly(
        pairs in prop::collection::vec((router(), router()), 1..8),
        faults in prop::collection::vec((router(), 0usize..4), 0..6),
        period_ns in 12u64..40,
    ) {
        let mut ctl = controller();
        let pristine = ctl.snapshot();
        let period = SimDuration::from_ns(period_ns);

        // Phase 1: admit whatever fits.
        let mut held = Vec::new();
        for (src, dst) in pairs {
            if src == dst {
                continue;
            }
            if let Ok(adm) = ctl.request(&ConnRequest { src, dst, period }) {
                held.push(adm);
            }
        }

        // Phase 2: the fabric breaks (only links that exist can fail).
        let grid = Grid::new(SIDE, SIDE);
        for (from, d) in faults {
            let dir = Direction::ALL[d];
            if grid.neighbor(from, dir).is_some() {
                ctl.fail_link(from, dir);
            }
        }

        // Phase 3: teardown + reroute every held connection over the
        // surviving links; some re-requests fail (partition), and that
        // must not leak either.
        let mut rerouted = Vec::new();
        for adm in held {
            let req = ConnRequest { src: adm.src, dst: adm.dst, period };
            ctl.release(&adm);
            if let Ok(again) = ctl.request(&req) {
                rerouted.push(again);
            }
        }

        // Phase 4: drain. Every budget counter is exactly pristine.
        for adm in rerouted {
            ctl.release(&adm);
        }
        prop_assert_eq!(ctl.snapshot(), pristine);
    }

    /// Releasing in any interleaving (not just LIFO) is exact: admit,
    /// fault, then release in an arbitrary order.
    #[test]
    fn release_order_is_irrelevant(
        pairs in prop::collection::vec((router(), router()), 2..6),
        faults in prop::collection::vec((router(), 0usize..4), 0..4),
        release_seed in any::<u64>(),
    ) {
        let mut ctl = controller();
        let pristine = ctl.snapshot();
        let period = SimDuration::from_ns(15);
        let mut held = Vec::new();
        for (src, dst) in pairs {
            if src == dst {
                continue;
            }
            if let Ok(adm) = ctl.request(&ConnRequest { src, dst, period }) {
                held.push(adm);
            }
        }
        let grid = Grid::new(SIDE, SIDE);
        for (from, d) in faults {
            let dir = Direction::ALL[d];
            if grid.neighbor(from, dir).is_some() {
                ctl.fail_link(from, dir);
            }
        }
        // A deterministic shuffle of the release order.
        let mut order: Vec<usize> = (0..held.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (release_seed as usize).wrapping_mul(i) % (i + 1));
        }
        for i in order {
            ctl.release(&held[i]);
        }
        prop_assert_eq!(ctl.snapshot(), pristine);
    }
}

/// The connection-manager side of the same contract: force-closing an
/// Open connection (the partition path — no in-band teardown possible)
/// returns every budget bit exactly, quarantines the remote router
/// state it could not prove clean, and leaves the fabric usable.
#[test]
fn force_close_returns_budgets_and_quarantines() {
    for seed in 0..8u64 {
        let mut sim = mango::net::NocSim::paper_mesh(4, 4, 1000 + seed);
        let src = RouterId::new(0, 0);
        let dst = RouterId::new(3, 0);
        let other = (RouterId::new(0, 3), RouterId::new(3, 3));

        let a = sim.open_connection(src, dst).expect("idle mesh admits");
        let b = sim
            .open_connection(other.0, other.1)
            .expect("disjoint row admits");
        sim.wait_connections_settled().expect("programming settles");

        // Partition-style teardown: no in-band close, straight to
        // force-close for both.
        let plan_a = sim.force_close_connection(a).expect("force-close a");
        let plan_b = sim.force_close_connection(b).expect("force-close b");
        // Open connections cannot prove remote hops clean.
        assert!(plan_a.quarantined_hops > 0, "seed {seed}");
        assert!(plan_b.quarantined_hops > 0, "seed {seed}");

        let conns = sim.network().connections();
        assert!(
            conns.nothing_reserved(),
            "seed {seed}: budgets must return exactly"
        );
        assert!(
            conns.quarantined_count() > 0,
            "seed {seed}: unproven remote state must be quarantined"
        );

        // The fabric stays usable: a fresh connection on the same rows
        // still opens (quarantine shrinks the pool, it does not wedge
        // the mesh).
        let again = sim
            .open_connection(src, dst)
            .expect("VCs remain after quarantine");
        sim.wait_connections_settled().expect("reopen settles");
        sim.close_connection(again).expect("in-band close");
        sim.wait_connections_settled().expect("close settles");
    }
}

/// A cross-chiplet connection whose seam link dies reroutes over the
/// surviving D2D link, and the recomputed bound stays path-aware: the
/// detour still pays exactly one D2D crossing. Cutting the last seam
/// link partitions the package and admission reports [`RejectReason::NoPath`].
#[test]
fn cross_chiplet_connection_reroutes_around_a_dead_boundary_link() {
    use mango::net::{d2d_extra_default, TopologySpec};
    use mango::qos::{report_for, RejectReason};

    // 2×1 chiplets of 2×2 nodes: a 4×2 package whose single x-seam
    // between columns 1|2 is crossed by exactly two eastward links.
    let grid = Grid::from_spec(&TopologySpec::chiplet(2, 1, 2, 2));
    let mut ctl = AdmissionController::new(
        grid.clone(),
        &RouterConfig::paper(),
        &NaConfig::paper(),
        0.875,
    );
    let period = SimDuration::from_ns(20);
    let req = ConnRequest {
        src: RouterId::new(0, 0),
        dst: RouterId::new(3, 0),
        period,
    };
    let flat = |hops| report_for(&RouterConfig::paper(), &NaConfig::paper(), hops, period);
    let d2d = d2d_extra_default();

    let adm = ctl.request(&req).expect("pristine package admits");
    assert_eq!(adm.hops(), 3);
    assert!(adm.xy);
    assert_eq!(
        adm.report.worst_latency.unwrap(),
        flat(3).worst_latency.unwrap() + d2d,
        "the admitted bound pays exactly one D2D crossing"
    );

    // The seam link under the XY route dies; teardown + re-admission
    // must find the detour over the surviving seam link at (1,1).
    ctl.fail_link(RouterId::new(1, 0), Direction::East);
    ctl.release(&adm);
    let healed = ctl.request(&req).expect("the second seam link survives");
    assert!(!healed.xy);
    assert_eq!(healed.hops(), 5);
    assert_eq!(
        healed.report.worst_latency.unwrap(),
        flat(5).worst_latency.unwrap() + d2d,
        "the detour still pays exactly one D2D crossing"
    );

    // Cutting the last seam link disconnects the chips: no amount of
    // detouring crosses a severed package boundary.
    ctl.fail_link(RouterId::new(1, 1), Direction::East);
    ctl.release(&healed);
    assert_eq!(ctl.request(&req).unwrap_err(), RejectReason::NoPath);
}

/// The full recovery engine on a partitioned package: both seam links
/// die under the only cross-die stream. No reroute exists, so the
/// outcome is a clean rejection/degradation — never a bound violation.
#[test]
fn partitioned_chiplets_degrade_instead_of_violating_bounds() {
    use mango::net::{FaultKind, FaultSchedule, MeasureBound, ScenarioSpec, TopologySpec};
    use mango::qos::{RecoveryOutcome, RecoverySpec};
    use mango::sim::SimTime;

    let mut spec = RecoverySpec::mesh(4, 2, 9);
    spec.base = ScenarioSpec::on_topology(TopologySpec::chiplet(2, 1, 2, 2), 9);
    spec.base.measure = MeasureBound::For(SimDuration::from_us(40));
    spec.managed = vec![(RouterId::new(0, 0), RouterId::new(3, 0))];
    spec.gs_period = SimDuration::from_ns(20);
    let at = SimTime::ZERO + SimDuration::from_us(5);
    spec.faults = FaultSchedule::new(9 ^ 0xFA_17)
        .with(
            at,
            FaultKind::LinkDown {
                from: RouterId::new(1, 0),
                dir: Direction::East,
            },
        )
        .with(
            at,
            FaultKind::LinkDown {
                from: RouterId::new(1, 1),
                dir: Direction::East,
            },
        );
    let m = spec.run();
    assert_eq!(m.broken, 1, "the cross-die stream must break");
    let victim = &m.records[0];
    assert!(
        matches!(
            victim.outcome,
            Some(RecoveryOutcome::Rejected | RecoveryOutcome::PermanentlyDegraded)
        ),
        "a severed package cannot heal: {victim:?}"
    );
    assert_eq!(m.post_bound_violations(), 0);
}

/// Randomized seam faults from [`FaultSchedule::random_boundary_links`]
/// hit only D2D links, and whatever they break the engine either heals
/// or degrades cleanly — recomputed bounds hold in every outcome.
#[test]
fn random_boundary_faults_never_violate_recomputed_bounds() {
    use mango::net::{FaultSchedule, MeasureBound, ScenarioSpec, TopologySpec};
    use mango::qos::RecoverySpec;
    use mango::sim::SimTime;

    for seed in [3u64, 17, 41] {
        let topo = TopologySpec::chiplet(2, 2, 2, 2);
        let grid = Grid::from_spec(&topo);
        let mut spec = RecoverySpec::mesh(4, 4, seed);
        spec.base = ScenarioSpec::on_topology(topo, seed);
        spec.base.measure = MeasureBound::For(SimDuration::from_us(40));
        // Both managed streams cross a die seam.
        spec.managed = vec![
            (RouterId::new(0, 0), RouterId::new(3, 3)),
            (RouterId::new(0, 3), RouterId::new(3, 0)),
        ];
        spec.gs_period = SimDuration::from_ns(20);
        spec.faults = FaultSchedule::random_boundary_links(
            &grid,
            seed,
            2,
            SimTime::ZERO + SimDuration::from_us(5),
            SimTime::ZERO + SimDuration::from_us(15),
        );
        let m = spec.run();
        assert_eq!(
            m.post_bound_violations(),
            0,
            "seed {seed}: a recomputed bound was violated"
        );
        for r in &m.records {
            if r.recovered_at.is_some() {
                assert!(r.outcome.is_some(), "seed {seed}: healed without outcome");
            }
        }
    }
}
