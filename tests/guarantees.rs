//! Integration tests for the guaranteed-service properties the paper
//! claims: hard bandwidth floors under full contention, bounded latency,
//! GS/BE independence, and inherent end-to-end flow control.

use mango::core::RouterId;
use mango::net::{EmitWindow, Grid, NaConfig, Network, NocSim, Pattern};
use mango::sim::{SimDuration, SimTime};

/// Seven connections funnel through one shared link, all backlogged:
/// every one must get at least its fair-share floor (1/8 of link
/// bandwidth), and together they saturate the link.
#[test]
fn fair_share_floor_under_full_contention() {
    let mut sim = NocSim::paper_mesh(3, 4, 11);
    // All these routes cross link (1,0) -> East (XY routing goes east
    // along row 0 first, then south in column 2).
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(2, 1)),
        (RouterId::new(0, 0), RouterId::new(2, 2)),
        (RouterId::new(0, 0), RouterId::new(2, 3)),
        (RouterId::new(1, 0), RouterId::new(2, 0)),
        (RouterId::new(1, 0), RouterId::new(2, 1)),
        (RouterId::new(1, 0), RouterId::new(2, 2)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).expect("7 VCs fit"))
        .collect();
    sim.wait_connections_settled()
        .expect("programming completes");

    // Offer 200 Mflit/s per connection — far beyond the shared link.
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flows: Vec<u32> = conns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            sim.add_gs_source(
                *c,
                Pattern::cbr(SimDuration::from_ns(5)),
                format!("contender-{i}"),
                EmitWindow::default(),
            )
        })
        .collect();
    sim.run_for(SimDuration::from_us(100));

    let link_m = sim.link_capacity_m(); // ≈ 795
    let floor = link_m / 8.0;
    let mut total = 0.0;
    for (i, flow) in flows.iter().enumerate() {
        let rate = sim.flow_throughput_m(*flow);
        total += rate;
        assert!(
            rate >= floor * 0.95,
            "connection {i} got {rate:.1} Mf/s, below the 1/8 floor {floor:.1}"
        );
    }
    // Work conservation: the seven backlogged connections share the whole
    // link (BE idle ⇒ its slot is redistributed).
    assert!(
        total >= link_m * 0.95,
        "aggregate {total:.1} must saturate the {link_m:.1} Mf/s link"
    );
}

/// Idle connections' bandwidth is redistributed: with only two contenders
/// backlogged, each gets far more than the floor.
#[test]
fn idle_share_redistribution() {
    let mut sim = NocSim::paper_mesh(3, 1, 13);
    let c1 = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    let c2 = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    sim.run_for(SimDuration::from_us(2));
    sim.begin_measurement();
    let f1 = sim.add_gs_source(
        c1,
        Pattern::cbr(SimDuration::from_ns(2)),
        "a",
        EmitWindow::default(),
    );
    let f2 = sim.add_gs_source(
        c2,
        Pattern::cbr(SimDuration::from_ns(2)),
        "b",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(50));
    let floor = sim.link_capacity_m() / 8.0;
    for f in [f1, f2] {
        let rate = sim.flow_throughput_m(f);
        assert!(
            rate > 2.0 * floor,
            "with 2 contenders each must exceed twice the floor, got {rate:.1}"
        );
    }
}

/// The headline property (Fig. 8): a GS connection's bandwidth and
/// latency are unaffected by any amount of BE traffic.
#[test]
fn gs_unaffected_by_be_saturation() {
    let measure = |be: bool| -> (f64, f64, f64) {
        let mut sim = NocSim::paper_mesh(4, 4, 17);
        let conn = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        if be {
            let all: Vec<RouterId> = sim.network().grid().ids().collect();
            for node in all.clone() {
                let dests: Vec<_> = all.iter().copied().filter(|d| *d != node).collect();
                sim.add_be_source(
                    node,
                    dests,
                    4,
                    Pattern::poisson(SimDuration::from_ns(100)),
                    format!("be-{node}"),
                    EmitWindow::default(),
                );
            }
        }
        sim.run_for(SimDuration::from_us(10));
        sim.begin_measurement();
        let flow = sim.add_gs_source(
            conn,
            Pattern::cbr(SimDuration::from_ns(12)), // ~83 Mf/s, inside the floor
            "gs",
            EmitWindow::default(),
        );
        sim.run_for(SimDuration::from_us(100));
        let s = sim.flow(flow);
        (
            sim.flow_throughput_m(flow),
            s.latency.mean().unwrap().as_ns_f64(),
            s.latency.max().unwrap().as_ns_f64(),
        )
    };

    let (bw0, mean0, _max0) = measure(false);
    let (bw1, mean1, max1) = measure(true);
    assert!(
        (bw1 - bw0).abs() / bw0 < 0.01,
        "GS throughput shifted under BE: {bw0:.2} -> {bw1:.2}"
    );
    // Latency may shift by bounded arbitration interference only: the
    // per-hop wait is bounded by the fair-share round, so the mean must
    // stay within one round per hop.
    let hops = 6.0;
    let round_ns = 8.0 * 1.258;
    assert!(
        mean1 - mean0 <= hops * round_ns,
        "GS mean latency blew up: {mean0:.1} -> {mean1:.1} ns"
    );
    // Hard bound: even the worst flit obeys per-hop wait ≤ one fair-share
    // round (+ injection and forward paths).
    let per_hop_ns = 8.0 * 1.258 + 0.95 + 0.18 + 0.62;
    let bound = (hops + 1.0) * per_hop_ns + 20.0;
    assert!(
        max1 <= bound,
        "worst-case latency {max1:.1} ns exceeds analytic bound {bound:.1} ns"
    );
}

/// Latency grows linearly with hop count (constant per-hop forwarding —
/// the non-blocking switch at work).
#[test]
fn unloaded_latency_scales_linearly_with_hops() {
    let mut means = Vec::new();
    for hops in [1u8, 2, 4, 7] {
        let mut sim = NocSim::paper_mesh(8, 1, 23);
        let conn = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(hops, 0))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        sim.begin_measurement();
        let flow = sim.add_gs_source(
            conn,
            Pattern::cbr(SimDuration::from_ns(50)),
            "lat",
            EmitWindow {
                limit: Some(500),
                ..Default::default()
            },
        );
        sim.run_to_quiescence();
        means.push(sim.flow(flow).latency.mean().unwrap().as_ns_f64());
    }
    // Fit increments: each extra hop adds the same delta (within 5%).
    let d1 = (means[1] - means[0]) / 1.0; // 1→2: 1 hop
    let d2 = (means[3] - means[2]) / 3.0; // 4→7: 3 hops
    assert!(
        (d1 - d2).abs() / d1 < 0.05,
        "per-hop latency not constant: {means:?}"
    );
    // And an unloaded flit is never queued: max == min per configuration.
    assert!(means[0] > 0.0);
}

/// End-to-end flow control is inherent (Sec. 6): a slow consumer
/// throttles the source through the unlock chain with zero loss.
#[test]
fn slow_consumer_backpressures_source() {
    let consume = SimDuration::from_ns(100); // 10 Mflit/s consumer
    let na_cfg = NaConfig {
        consume_delay: consume,
        ..NaConfig::paper()
    };
    let net = Network::new(Grid::new(3, 1), mango::core::RouterConfig::paper(), na_cfg);
    let mut sim = NocSim::new(net, 31);
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    sim.run_for(SimDuration::from_us(2));
    sim.begin_measurement();
    // Offer 200 Mflit/s against a 10 Mflit/s consumer.
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(5)),
        "fast-into-slow",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(200));
    let delivered_rate = sim.flow_throughput_m(flow);
    assert!(
        (delivered_rate - 10.0).abs() < 1.0,
        "delivery rate {delivered_rate:.1} must match the 10 Mf/s consumer"
    );
    // Nothing was lost: everything not delivered is queued at the source
    // or in the (tiny) in-network buffers.
    let s = sim.flow(flow);
    let in_network = s.injected - s.delivered;
    let src_idx = sim.network().grid().index(RouterId::new(0, 0));
    let src_queue = sim.network().na().gs_queue_len(src_idx, 0) as u64;
    // Per hop at most 2 flits + NA slot + in-flight: the network holds
    // only a handful — the rest waits at the source.
    assert!(
        in_network - src_queue < 20,
        "flits unaccounted for: {in_network} in flight, {src_queue} queued at source"
    );
}

/// GS connections are independent of each other too: a saturated
/// neighbour VC cannot push a polite connection below its floor, and a
/// quiet one keeps its low latency.
#[test]
fn gs_connections_isolated_from_each_other() {
    let mut sim = NocSim::paper_mesh(3, 1, 37);
    let polite = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    let greedy = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(2, 0))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    sim.run_for(SimDuration::from_us(2));
    sim.begin_measurement();
    // Polite: 60 Mf/s (inside its floor). Greedy: 500 Mf/s (way over).
    let polite_flow = sim.add_gs_source(
        polite,
        Pattern::cbr(SimDuration::from_ps(16_667)),
        "polite",
        EmitWindow::default(),
    );
    let _greedy_flow = sim.add_gs_source(
        greedy,
        Pattern::cbr(SimDuration::from_ns(2)),
        "greedy",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(100));
    let rate = sim.flow_throughput_m(polite_flow);
    assert!(
        (rate - 60.0).abs() < 1.0,
        "polite connection must keep its 60 Mf/s, got {rate:.1}"
    );
    let max = sim.flow(polite_flow).latency.max().unwrap();
    // 2 hops: injection + 2 × (fair-share round + forward) is a generous
    // analytic ceiling.
    assert!(
        max < SimDuration::from_ns(60),
        "polite worst-case latency {max} out of bounds"
    );
}

/// Measurement sanity: the harness accounts every injected flit exactly
/// once.
#[test]
fn no_flit_loss_or_duplication_across_flows() {
    let mut sim = NocSim::paper_mesh(3, 3, 41);
    let mut flows = Vec::new();
    for (s, d) in [
        (RouterId::new(0, 0), RouterId::new(2, 2)),
        (RouterId::new(2, 0), RouterId::new(0, 2)),
        (RouterId::new(1, 1), RouterId::new(0, 0)),
    ] {
        let c = sim.open_connection(s, d).unwrap();
        sim.wait_connections_settled().unwrap();
        flows.push(sim.add_gs_source(
            c,
            Pattern::poisson(SimDuration::from_ns(15)),
            format!("{s}->{d}"),
            EmitWindow {
                limit: Some(2_000),
                ..Default::default()
            },
        ));
    }
    let outcome = sim.run_to_quiescence();
    assert_eq!(outcome, mango::sim::RunOutcome::Quiescent);
    for f in flows {
        let s = sim.flow(f);
        assert_eq!(s.injected, 2_000);
        assert_eq!(s.delivered, 2_000, "flow {} lost flits", s.name);
        assert_eq!(s.sequence_errors, 0, "flow {} reordered", s.name);
    }
    let _ = SimTime::ZERO;
}

/// Heterogeneous pipelined links (Sec. 3: "long links can be implemented
/// as pipelines"): extra forward stages on one link add exactly their
/// latency to connections crossing it, in both directions independently,
/// without affecting other paths.
#[test]
fn heterogeneous_link_delay_adds_exactly_per_crossing() {
    use mango::core::Direction;
    use mango::net::{Grid, NaConfig, Network};

    let measure = |extra_ps: u64| -> (f64, f64) {
        let mut grid = Grid::new(3, 1);
        grid.set_link_extra(
            RouterId::new(0, 0),
            Direction::East,
            SimDuration::from_ps(extra_ps),
        );
        let net = Network::new(grid, mango::core::RouterConfig::paper(), NaConfig::paper());
        let mut sim = mango::net::NocSim::new(net, 51);
        // Crosses the slow link.
        let slow = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(1, 0))
            .unwrap();
        // Does not.
        let fast = sim
            .open_connection(RouterId::new(1, 0), RouterId::new(2, 0))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        sim.begin_measurement();
        let fs = sim.add_gs_source(
            slow,
            Pattern::cbr(SimDuration::from_ns(50)),
            "slow",
            EmitWindow {
                limit: Some(200),
                ..Default::default()
            },
        );
        let ff = sim.add_gs_source(
            fast,
            Pattern::cbr(SimDuration::from_ns(50)),
            "fast",
            EmitWindow {
                limit: Some(200),
                ..Default::default()
            },
        );
        sim.run_to_quiescence();
        (
            sim.flow(fs).latency.mean().unwrap().as_ns_f64(),
            sim.flow(ff).latency.mean().unwrap().as_ns_f64(),
        )
    };

    let (slow0, fast0) = measure(0);
    let (slow2, fast2) = measure(2_000);
    // The slow connection gains exactly the 2 ns stage...
    assert!(
        (slow2 - slow0 - 2.0).abs() < 0.01,
        "expected +2 ns on the pipelined link: {slow0:.3} -> {slow2:.3}"
    );
    // ...while the other path is untouched.
    assert!(
        (fast2 - fast0).abs() < 0.01,
        "unrelated path shifted: {fast0:.3} -> {fast2:.3}"
    );
}
