//! Integration tests for the BE router: source routing, hop limits,
//! packet coherency, deadlock freedom under XY routing — and deadlock
//! *detection* when routes violate it.

use mango::core::{BeHeader, Direction, RouterId};
use mango::net::{AppPacket, EmitWindow, NaApp, NetEvent, NocSim, Pattern};
use mango::sim::{RunOutcome, SimDuration, SimTime};
use std::sync::{Arc, Mutex};

/// Uniform random BE traffic on a 4×4 mesh: every packet arrives, intact
/// and unfragmented.
#[test]
fn uniform_random_be_traffic_is_lossless() {
    let mut sim = NocSim::paper_mesh(4, 4, 101);
    let all: Vec<RouterId> = sim.network().grid().ids().collect();
    let mut flows = Vec::new();
    for node in all.clone() {
        let dests: Vec<_> = all.iter().copied().filter(|d| *d != node).collect();
        flows.push(sim.add_be_source(
            node,
            dests,
            3,
            Pattern::poisson(SimDuration::from_ns(300)),
            format!("be-{node}"),
            EmitWindow {
                limit: Some(200),
                ..Default::default()
            },
        ));
    }
    let outcome = sim.run_to_quiescence();
    assert_eq!(outcome, RunOutcome::Quiescent, "XY BE traffic must drain");
    for f in flows {
        let s = sim.flow(f);
        assert_eq!(s.injected, 200);
        assert_eq!(s.delivered, 200, "{} lost packets", s.name);
    }
}

/// A 15-hop route — the header's maximum — delivers correctly.
#[test]
fn fifteen_hop_packet_traverses_the_mesh() {
    let mut sim = NocSim::paper_mesh(16, 1, 103);
    let flow = sim.network_mut().stats_mut().register_flow("longhaul");
    sim.send_be(
        RouterId::new(0, 0),
        RouterId::new(15, 0),
        &[0xAB, 0xCD],
        Some(flow),
    );
    let outcome = sim.run_to_quiescence();
    assert_eq!(outcome, RunOutcome::Quiescent);
    assert_eq!(sim.flow(flow).delivered, 1);
}

/// An app that records every packet payload it receives.
#[derive(Debug, Default)]
struct Recorder {
    packets: Arc<Mutex<Vec<Vec<u32>>>>,
}

impl NaApp for Recorder {
    fn on_packet(&mut self, _now: SimTime, packet: &[mango::core::Flit]) -> Vec<AppPacket> {
        self.packets
            .lock()
            .unwrap()
            .push(packet[1..].iter().map(|f| f.data).collect());
        Vec::new()
    }
}

/// Payload integrity and packet coherency: packets from two senders to
/// one receiver arrive unmixed, each with its exact payload.
#[test]
fn concurrent_packets_arrive_intact_and_unmixed() {
    let mut sim = NocSim::paper_mesh(3, 3, 107);
    let sink = RouterId::new(1, 1);
    let packets = Arc::new(Mutex::new(Vec::new()));
    sim.network_mut().set_app(
        sink,
        Box::new(Recorder {
            packets: packets.clone(),
        }),
    );
    // Two senders each send 30 packets with distinctive payloads.
    for i in 0..30u32 {
        sim.send_be(
            RouterId::new(0, 0),
            sink,
            &[0xA000 + i, 0xA100 + i, 0xA200 + i],
            None,
        );
        sim.send_be(
            RouterId::new(2, 2),
            sink,
            &[0xB000 + i, 0xB100 + i, 0xB200 + i],
            None,
        );
    }
    let outcome = sim.run_to_quiescence();
    assert_eq!(outcome, RunOutcome::Quiescent);
    let received = packets.lock().unwrap();
    assert_eq!(received.len(), 60);
    for p in received.iter() {
        assert_eq!(p.len(), 3, "packet fragmented or merged: {p:x?}");
        let base = p[0];
        assert_eq!(p[1], base + 0x100, "payload corrupted: {p:x?}");
        assert_eq!(p[2], base + 0x200, "payload corrupted: {p:x?}");
    }
    // Both senders' packets all arrived, in per-sender order.
    let from_a: Vec<u32> = received
        .iter()
        .filter(|p| p[0] < 0xB000)
        .map(|p| p[0])
        .collect();
    let from_b: Vec<u32> = received
        .iter()
        .filter(|p| p[0] >= 0xB000)
        .map(|p| p[0])
        .collect();
    assert_eq!(from_a.len(), 30);
    assert_eq!(from_b.len(), 30);
    assert!(from_a.windows(2).all(|w| w[0] < w[1]), "sender A reordered");
    assert!(from_b.windows(2).all(|w| w[0] < w[1]), "sender B reordered");
}

/// Sends a raw-routed BE packet (bypassing XY) by enqueuing flits with a
/// hand-built header directly at the source NA.
fn send_raw_route(sim: &mut NocSim, src: RouterId, route: &[Direction], len: usize) {
    let header = BeHeader::from_route(route).expect("legal route");
    let payload: Vec<u32> = (0..len as u32).collect();
    let flits = mango::core::build_be_packet(header, &payload, false);
    let delay = sim.network().inject_delay();
    let src_idx = sim.network().grid().index(src);
    let need = sim.network_mut().na_mut().enqueue_be(src_idx, flits);
    if need {
        // Mirror NocSim::send_be's scheduling.
        let ev = NetEvent::NaBeInject { id: src };
        sim.schedule_raw(delay, ev);
    }
}

/// Four wormholes chasing each other around a square with non-XY routes
/// deadlock — and the kernel detects the stall instead of hanging. The
/// same traffic under XY routing drains fine (the paper's Sec. 5
/// justification for dimension-ordered routing).
#[test]
fn non_xy_routes_deadlock_and_are_detected() {
    use Direction::*;
    let mut sim = NocSim::paper_mesh(2, 2, 109);
    // Cyclic turn pattern: each packet takes two links, turning so the
    // four paths form a dependency ring; long packets span both links.
    let len = 12;
    for _ in 0..3 {
        send_raw_route(&mut sim, RouterId::new(0, 0), &[East, South], len); // E then S
        send_raw_route(&mut sim, RouterId::new(1, 0), &[South, West], len); // S then W
        send_raw_route(&mut sim, RouterId::new(1, 1), &[West, North], len); // W then N
        send_raw_route(&mut sim, RouterId::new(0, 1), &[North, East], len); // N then E
    }
    let outcome = sim.run_to_quiescence();
    assert_eq!(
        outcome,
        RunOutcome::Stalled,
        "cyclic wormholes must deadlock and be detected"
    );

    // Control: the same endpoints with XY routes drain.
    let mut sim = NocSim::paper_mesh(2, 2, 109);
    let mut flows = Vec::new();
    for (s, d) in [
        (RouterId::new(0, 0), RouterId::new(1, 1)),
        (RouterId::new(1, 0), RouterId::new(0, 1)),
        (RouterId::new(1, 1), RouterId::new(0, 0)),
        (RouterId::new(0, 1), RouterId::new(1, 0)),
    ] {
        let f = sim.network_mut().stats_mut().register_flow("xy");
        for _ in 0..3 {
            sim.send_be(s, d, &(0..12u32).collect::<Vec<_>>(), Some(f));
        }
        flows.push(f);
    }
    let outcome = sim.run_to_quiescence();
    assert_eq!(
        outcome,
        RunOutcome::Quiescent,
        "XY routing is deadlock-free"
    );
    for f in flows {
        assert_eq!(sim.flow(f).delivered, 3);
    }
}

/// BE bandwidth sharing: with the link otherwise idle, BE can use far
/// more than one slot's worth; with all GS VCs backlogged it still gets
/// its 1/8 floor.
#[test]
fn be_gets_floor_under_gs_saturation_and_more_when_idle() {
    // Idle network: BE alone on a 2-hop path.
    let mut sim = NocSim::paper_mesh(3, 1, 113);
    sim.begin_measurement();
    let flow = sim.add_be_source(
        RouterId::new(0, 0),
        vec![RouterId::new(2, 0)],
        3,
        Pattern::cbr(SimDuration::from_ns(12)),
        "be-idle",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(60));
    let idle_pkts = sim.flow_throughput_m(flow); // packets/s in M
    let idle_flits = idle_pkts * 4.0; // 4 flits per packet
    let floor = sim.link_capacity_m() / 8.0;
    assert!(
        idle_flits > floor * 1.5,
        "idle network: BE should exceed its floor, got {idle_flits:.1} Mf/s"
    );

    // Saturated network: 7 GS connections hammering the same links.
    let mut sim = NocSim::paper_mesh(3, 4, 113);
    let pairs = [
        (RouterId::new(0, 0), RouterId::new(2, 0)),
        (RouterId::new(0, 0), RouterId::new(2, 1)),
        (RouterId::new(0, 0), RouterId::new(2, 2)),
        (RouterId::new(0, 0), RouterId::new(2, 3)),
        (RouterId::new(1, 0), RouterId::new(2, 0)),
        (RouterId::new(1, 0), RouterId::new(2, 1)),
        (RouterId::new(1, 0), RouterId::new(2, 2)),
    ];
    let conns: Vec<_> = pairs
        .iter()
        .map(|(s, d)| sim.open_connection(*s, *d).unwrap())
        .collect();
    sim.wait_connections_settled().unwrap();
    for (i, c) in conns.iter().enumerate() {
        sim.add_gs_source(
            *c,
            Pattern::cbr(SimDuration::from_ns(5)),
            format!("gs-{i}"),
            EmitWindow::default(),
        );
    }
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let be_flow = sim.add_be_source(
        RouterId::new(1, 0),
        vec![RouterId::new(2, 0)],
        3,
        Pattern::cbr(SimDuration::from_ns(12)),
        "be-contended",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(100));
    let be_flits = sim.flow_throughput_m(be_flow) * 4.0;
    assert!(
        be_flits >= floor * 0.8,
        "BE must keep ~its 1/8 floor under GS saturation, got {be_flits:.1} vs floor {floor:.1}"
    );
}
