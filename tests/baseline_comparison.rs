//! Integration tests comparing MANGO against the paper's two reference
//! points: the generic blocking router of Fig. 3 and the ÆTHEREAL-style
//! TDM network of Sec. 6.

use mango::baseline::{run_generic_congestion, GenericConfig, TdmConfig, TdmNetwork};
use mango::core::RouterId;
use mango::net::{EmitWindow, Grid, NocSim, Pattern};
use mango::sim::SimDuration;

/// Fig. 3 vs Fig. 4: under rising cross-traffic the generic router's
/// tagged-flow latency explodes while MANGO's GS latency stays put.
#[test]
fn generic_router_congests_where_mango_does_not() {
    // Generic router: tagged flow latency at three background loads.
    let gen_at = |load: f64| {
        run_generic_congestion(
            GenericConfig {
                cycle: SimDuration::from_ps(1258),
                tagged_period: SimDuration::from_ps(1258 * 8),
                background_load: load,
                seed: 7,
            },
            SimDuration::from_us(100),
        )
        .mean()
        .unwrap()
        .as_ns_f64()
    };
    let g_idle = gen_at(0.0);
    let g_heavy = gen_at(0.8);
    assert!(
        g_heavy > 3.0 * g_idle,
        "generic router must congest: idle {g_idle:.2} ns vs heavy {g_heavy:.2} ns"
    );

    // MANGO: one-hop GS connection at the same tagged rate, with the
    // other six GS VCs and BE all saturated.
    let mango_at = |saturate: bool| -> f64 {
        let mut sim = NocSim::paper_mesh(2, 4, 7);
        let tagged = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(1, 0))
            .unwrap();
        let mut cross = Vec::new();
        if saturate {
            for dst in [
                RouterId::new(1, 1),
                RouterId::new(1, 2),
                RouterId::new(1, 3),
            ] {
                cross.push(sim.open_connection(RouterId::new(0, 0), dst).unwrap());
                cross.push(sim.open_connection(RouterId::new(0, 1), dst).unwrap());
            }
        }
        sim.wait_connections_settled().unwrap();
        if saturate {
            for (i, c) in cross.iter().enumerate() {
                sim.add_gs_source(
                    *c,
                    Pattern::cbr(SimDuration::from_ns(3)),
                    format!("cross-{i}"),
                    EmitWindow::default(),
                );
            }
            // BE flood over the same link.
            sim.add_be_source(
                RouterId::new(0, 0),
                vec![RouterId::new(1, 3)],
                4,
                Pattern::cbr(SimDuration::from_ns(10)),
                "be-flood",
                EmitWindow::default(),
            );
        }
        sim.run_for(SimDuration::from_us(10));
        sim.begin_measurement();
        let flow = sim.add_gs_source(
            tagged,
            Pattern::cbr(SimDuration::from_ps(1258 * 8)),
            "tagged",
            EmitWindow::default(),
        );
        sim.run_for(SimDuration::from_us(100));
        sim.flow(flow).latency.mean().unwrap().as_ns_f64()
    };
    let m_idle = mango_at(false);
    let m_heavy = mango_at(true);
    assert!(
        m_heavy < 2.0 * m_idle,
        "MANGO GS latency must stay bounded: idle {m_idle:.2} ns vs saturated {m_heavy:.2} ns"
    );
}

/// Wait — cross-traffic check: the saturating connections above consume
/// VCs on the shared link; the allocator must have had room. Sanity-check
/// the allocation geometry used by the previous test.
#[test]
fn cross_traffic_allocation_fits() {
    let mut sim = NocSim::paper_mesh(2, 4, 7);
    let mut opened = 0;
    assert!(sim
        .open_connection(RouterId::new(0, 0), RouterId::new(1, 0))
        .is_ok());
    opened += 1;
    for dst in [
        RouterId::new(1, 1),
        RouterId::new(1, 2),
        RouterId::new(1, 3),
    ] {
        assert!(sim.open_connection(RouterId::new(0, 0), dst).is_ok());
        assert!(sim.open_connection(RouterId::new(0, 1), dst).is_ok());
        opened += 2;
    }
    assert_eq!(opened, 7);
    sim.wait_connections_settled().unwrap();
}

/// Sec. 6 comparison, bandwidth side: at equal reservation (1/8 of a
/// link), MANGO's header-less GS stream delivers more payload than a TDM
/// slot that must carry headers.
#[test]
fn mango_payload_beats_tdm_at_equal_reservation() {
    // TDM: 1 slot of 8 at 500 MHz with 3-of-4 payload efficiency.
    let mut tdm = TdmNetwork::new(Grid::new(4, 1), TdmConfig::aethereal());
    let gt = tdm
        .open_gt(RouterId::new(0, 0), RouterId::new(3, 0), 1)
        .unwrap();
    let tdm_payload = tdm.gt_payload_bandwidth_fps(gt) / 1e6;

    // MANGO: stream at the fair-share floor on the same 3-hop path while
    // the other 6 VCs are saturated, so the connection really is pinned
    // to its 1/8 share.
    let mut sim = NocSim::paper_mesh(4, 4, 31);
    let tagged = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(3, 0))
        .unwrap();
    let mut cross = Vec::new();
    for dst in [
        RouterId::new(3, 1),
        RouterId::new(3, 2),
        RouterId::new(3, 3),
    ] {
        cross.push(sim.open_connection(RouterId::new(0, 0), dst).unwrap());
        cross.push(sim.open_connection(RouterId::new(0, 1), dst).unwrap());
    }
    sim.wait_connections_settled().unwrap();
    for (i, c) in cross.iter().enumerate() {
        sim.add_gs_source(
            *c,
            Pattern::cbr(SimDuration::from_ns(3)),
            format!("cross-{i}"),
            EmitWindow::default(),
        );
    }
    sim.run_for(SimDuration::from_us(10));
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        tagged,
        Pattern::cbr(SimDuration::from_ns(6)),
        "pinned",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(100));
    let mango_rate = sim.flow_throughput_m(flow);
    let floor = sim.link_capacity_m() / 8.0;
    assert!(
        mango_rate >= floor * 0.95,
        "pinned connection holds its floor: {mango_rate:.1}"
    );
    assert!(
        mango_rate > tdm_payload,
        "MANGO {mango_rate:.1} Mf/s payload must beat TDM {tdm_payload:.1} at 1/8 reservation"
    );
}

/// Latency coupling: TDM single-slot worst-case latency includes a frame
/// wait; MANGO's bounded arbitration wait on the same path is smaller.
#[test]
fn tdm_couples_latency_to_frame_mango_does_not() {
    let mut tdm = TdmNetwork::new(Grid::new(4, 1), TdmConfig::aethereal());
    let gt = tdm
        .open_gt(RouterId::new(0, 0), RouterId::new(3, 0), 1)
        .unwrap();
    let tdm_worst = tdm.gt_worst_latency(gt).as_ns_f64();

    // MANGO unloaded on the same 3-hop path. Sparse CBR so no flit ever
    // queues at the source: both sides then measure a lone flit's
    // network latency, which is the paper's comparison point (TDM couples
    // it to the slot frame; MANGO does not).
    let mut sim = NocSim::paper_mesh(4, 1, 37);
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(3, 0))
        .unwrap();
    sim.wait_connections_settled().unwrap();
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(100)),
        "lat",
        EmitWindow {
            limit: Some(2_000),
            ..Default::default()
        },
    );
    sim.run_to_quiescence();
    let mango_worst = sim.flow(flow).latency.max().unwrap().as_ns_f64();
    assert!(
        mango_worst < tdm_worst,
        "MANGO worst {mango_worst:.1} ns must undercut TDM frame-coupled {tdm_worst:.1} ns"
    );
}
