//! Integration tests across the hardware cost models: the area, timing
//! and power models must stay consistent with each other, with the
//! paper's numbers, and with the simulator they parameterize.

use mango::core::{RouterConfig, RouterId};
use mango::hw::area::{AreaModel, RouterParams, Table1};
use mango::hw::power::PowerModel;
use mango::hw::{Corner, TimingModel};
use mango::net::{EmitWindow, Grid, NaConfig, Network, NocSim, Pattern};
use mango::sim::SimDuration;

#[test]
fn paper_numbers_reproduce_within_tolerance() {
    let area = AreaModel::cmos_120nm().breakdown(&RouterParams::paper());
    assert!((area.total_mm2() - Table1::PAPER_TOTAL).abs() / Table1::PAPER_TOTAL < 0.02);

    let timing = TimingModel::cmos_120nm();
    assert!((timing.port_speed_mhz(Corner::Typical) - 795.0).abs() < 1.0);
    assert!((timing.port_speed_mhz(Corner::WorstCase) - 515.0).abs() < 1.0);
}

#[test]
fn router_config_defaults_agree_with_hw_models() {
    let cfg = RouterConfig::paper();
    let timing = TimingModel::cmos_120nm();
    assert_eq!(
        cfg.timing,
        timing.router_timing(Corner::Typical),
        "RouterConfig::paper must carry the calibrated typical timing"
    );
    assert_eq!(
        RouterConfig::paper_worst_case().timing,
        timing.router_timing(Corner::WorstCase)
    );
    // Area-model parameters and simulator parameters are the same struct.
    assert_eq!(cfg.params, RouterParams::paper());
}

/// The simulated worst-case/typical throughput ratio equals the corner
/// derating — the simulator inherits the timing model exactly.
#[test]
fn corner_ratio_flows_through_simulation() {
    let measure = |cfg: RouterConfig| -> f64 {
        let net = Network::new(Grid::new(2, 1), cfg, NaConfig::paper());
        let mut sim = NocSim::new(net, 3);
        let a = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(1, 0))
            .unwrap();
        let b = sim
            .open_connection(RouterId::new(0, 0), RouterId::new(1, 0))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        sim.run_for(SimDuration::from_us(2));
        sim.begin_measurement();
        let fa = sim.add_gs_source(
            a,
            Pattern::cbr(SimDuration::from_ns(1)),
            "a",
            EmitWindow::default(),
        );
        let fb = sim.add_gs_source(
            b,
            Pattern::cbr(SimDuration::from_ns(1)),
            "b",
            EmitWindow::default(),
        );
        sim.run_for(SimDuration::from_us(50));
        sim.flow_throughput_m(fa) + sim.flow_throughput_m(fb)
    };
    let typ = measure(RouterConfig::paper());
    let wc = measure(RouterConfig::paper_worst_case());
    let ratio = typ / wc;
    assert!(
        (ratio - Corner::WorstCase.derating()).abs() < 0.02,
        "simulated corner ratio {ratio:.4} vs derating {:.4}",
        Corner::WorstCase.derating()
    );
}

#[test]
fn dynamic_power_scales_with_simulated_traffic() {
    let power = PowerModel::cmos_120nm();
    let params = RouterParams::paper();
    // A router forwarding at full link rate on one port.
    let full_rate = 794.9e6;
    let p_full = power.dynamic_power_mw(&params, full_rate);
    let p_half = power.dynamic_power_mw(&params, full_rate / 2.0);
    assert!((p_full / p_half - 2.0).abs() < 1e-9);
    // Sanity: a few mW at full tilt for a 37-bit link — 0.12 µm-plausible.
    assert!(p_full > 0.5 && p_full < 10.0, "{p_full} mW");
}

#[test]
fn area_model_covers_wide_design_space_without_panics() {
    let model = AreaModel::cmos_120nm();
    for ports in [2usize, 3, 5, 8] {
        for vcs in [2usize, 4, 8, 16, 64] {
            for bits in [8usize, 32, 128] {
                for depth in [1usize, 2, 16] {
                    let p = RouterParams {
                        ports,
                        gs_vcs: vcs,
                        flit_data_bits: bits,
                        buffer_depth: depth,
                        local_gs_ifaces: 4.min(vcs),
                    };
                    let b = model.breakdown(&p);
                    assert!(b.total_um2() > 0.0);
                    assert!(b.total_um2().is_finite());
                }
            }
        }
    }
}

#[test]
fn timing_corners_order_every_stage() {
    let m = TimingModel::cmos_120nm();
    let typ = m.router_timing(Corner::Typical);
    let wc = m.router_timing(Corner::WorstCase);
    // Every derated delay is strictly slower, and the ratio is uniform.
    for (t, w) in [
        (typ.link_cycle, wc.link_cycle),
        (typ.hop_forward, wc.hop_forward),
        (typ.buffer_advance, wc.buffer_advance),
        (typ.unlock_path, wc.unlock_path),
        (typ.arb_decision, wc.arb_decision),
        (typ.be_route, wc.be_route),
        (typ.be_arb, wc.be_arb),
        (typ.credit_return, wc.credit_return),
    ] {
        let ratio = w.as_ps() as f64 / t.as_ps() as f64;
        assert!(
            (ratio - Corner::WorstCase.derating()).abs() < 0.01,
            "non-uniform derating: {t} -> {w}"
        );
    }
}
