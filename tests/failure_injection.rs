//! Failure-injection tests: the network must degrade gracefully — or
//! fail loudly with a protocol diagnosis — under malformed inputs, and
//! keep its guarantees for everyone else while doing so.

use mango::core::{build_be_packet, BeHeader, Direction, RouterId};
use mango::net::{xy_header, EmitWindow, NocSim, Pattern};
use mango::sim::{RunOutcome, SimDuration};

/// Injects a config-marked BE packet with the given payload words from
/// `src` to `dst`.
fn send_config_packet(sim: &mut NocSim, src: RouterId, dst: RouterId, payload: &[u32]) {
    let header = xy_header(sim.network().grid(), src, dst).expect("route");
    let flits = build_be_packet(header, payload, true);
    let delay = sim.network().inject_delay();
    let src_idx = sim.network().grid().index(src);
    if sim.network_mut().na_mut().enqueue_be(src_idx, flits) {
        sim.schedule_raw(delay, mango::net::NetEvent::NaBeInject { id: src });
    }
}

/// A garbage configuration packet is counted and dropped; the router
/// keeps working.
#[test]
fn malformed_config_packet_is_counted_and_dropped() {
    let mut sim = NocSim::paper_mesh(3, 1, 301);
    let src = RouterId::new(0, 0);
    let victim = RouterId::new(2, 0);
    // Opcode 0xF does not exist.
    send_config_packet(&mut sim, src, victim, &[0xFFFF_FFFF, 0x1234_5678]);
    sim.run_for(SimDuration::from_us(5));
    let stats = sim.network().node(victim).router.stats();
    assert_eq!(
        stats.prog_packets, 1,
        "packet consumed by the prog interface"
    );
    assert_eq!(stats.prog_errors, 1, "and counted as an error");
    assert_eq!(
        sim.network().node(victim).router.table().steer_entries(),
        0,
        "nothing was applied"
    );

    // The router still opens real connections afterwards.
    let conn = sim.open_connection(src, victim).unwrap();
    sim.wait_connections_settled().unwrap();
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(10)),
        "after-garbage",
        EmitWindow {
            limit: Some(100),
            ..Default::default()
        },
    );
    sim.run_to_quiescence();
    assert_eq!(sim.flow(flow).delivered, 100);
}

/// A config packet that *conflicts* with an existing connection
/// (occupied table entries) is rejected without corrupting the live
/// connection.
#[test]
fn conflicting_programming_is_rejected_not_applied() {
    let mut sim = NocSim::paper_mesh(3, 1, 303);
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(2, 0);
    let conn = sim.open_connection(src, dst).unwrap();
    sim.wait_connections_settled().unwrap();

    // Try to reprogram the steering entry the live connection uses at
    // the middle router (dir=East, vc=0 — first-fit allocation).
    let write = mango::core::ProgWrite::SetSteer {
        dir: Direction::East,
        vc: mango::core::VcId(0),
        steer: mango::core::Steer::BeUnit,
    };
    let payload = mango::core::prog::encode_payload(&[write], None);
    send_config_packet(&mut sim, src, RouterId::new(1, 0), &payload);
    sim.run_for(SimDuration::from_us(5));

    let mid = sim.network().node(RouterId::new(1, 0)).router.stats();
    assert_eq!(mid.prog_errors, 1, "occupied entry rejected");

    // The live connection still works perfectly.
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(10)),
        "survivor",
        EmitWindow {
            limit: Some(500),
            ..Default::default()
        },
    );
    sim.run_to_quiescence();
    let s = sim.flow(flow);
    assert_eq!(s.delivered, 500);
    assert_eq!(s.sequence_errors, 0);
}

/// An ack-shaped payload word in ordinary BE traffic must not confuse
/// the connection manager (token check) or disturb programming.
#[test]
fn forged_ack_words_are_ignored() {
    let mut sim = NocSim::paper_mesh(3, 1, 307);
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(2, 0);
    // Start opening a connection...
    let conn = sim.open_connection(src, dst).unwrap();
    // ...and immediately bombard the source NA with forged ack packets
    // (0xAC00_xxxx payloads) from the destination.
    for token in 0..64u32 {
        let header = BeHeader::from_route(&[Direction::West, Direction::West]).unwrap();
        let flits = build_be_packet(header, &[0xAC00_0000 | token], false);
        let delay = sim.network().inject_delay();
        let dst_idx = sim.network().grid().index(dst);
        if sim.network_mut().na_mut().enqueue_be(dst_idx, flits) {
            sim.schedule_raw(delay, mango::net::NetEvent::NaBeInject { id: dst });
        }
    }
    sim.wait_connections_settled().unwrap();
    assert_eq!(
        sim.connection_state(conn),
        Some(mango::net::ConnState::Open),
        "real acks still complete the open despite forged traffic"
    );
    // Forged tokens were unknown, so nothing transitioned spuriously: a
    // second open still works.
    let conn2 = sim.open_connection(src, dst).unwrap();
    sim.wait_connections_settled().unwrap();
    assert_eq!(
        sim.connection_state(conn2),
        Some(mango::net::ConnState::Open)
    );
}

/// Flits on an unprogrammed VC are a hard protocol violation and panic
/// with a diagnosis naming the buffer (fail-loud, not silent corruption).
#[test]
fn unprogrammed_vc_panics_with_diagnosis() {
    let result = std::panic::catch_unwind(|| {
        let (mut router, mut bufs, mut be) = mango::core::Router::standalone(
            RouterId::new(1, 1),
            mango::core::RouterConfig::paper(),
        );
        let mut act = Vec::new();
        router.on_link_flit(
            &mut bufs,
            &mut be,
            mango::sim::SimTime::ZERO,
            Direction::West,
            mango::core::LinkFlit {
                steer: mango::core::Steer::GsBuffer {
                    dir: Direction::East,
                    vc: mango::core::VcId(3),
                },
                flit: mango::core::Flit::gs(1),
            },
            &mut act,
        );
        // Drain the advance event to reach the unlock lookup.
        let pending = std::mem::take(&mut act);
        for a in pending {
            if let mango::core::RouterAction::Internal { event, .. } = a {
                router.on_internal(
                    &mut bufs,
                    &mut be,
                    mango::sim::SimTime::ZERO,
                    event,
                    &mut act,
                );
            }
        }
    });
    let err = result.expect_err("must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("unprogrammed GS buffer"),
        "diagnosis missing: {msg}"
    );
}

/// Overload on every BE source simultaneously: the network saturates but
/// never wedges — after the sources stop, everything drains.
#[test]
fn be_overload_drains_after_sources_stop() {
    let mut sim = NocSim::paper_mesh(4, 4, 311);
    let all: Vec<RouterId> = sim.network().grid().ids().collect();
    let mut flows = Vec::new();
    for node in all.clone() {
        let dests: Vec<_> = all.iter().copied().filter(|d| *d != node).collect();
        flows.push(sim.add_be_source(
            node,
            dests,
            5,
            Pattern::cbr(SimDuration::from_ns(10)), // far beyond capacity
            format!("overload-{node}"),
            EmitWindow {
                limit: Some(500),
                ..Default::default()
            },
        ));
    }
    let outcome = sim.run_to_quiescence();
    assert_eq!(
        outcome,
        RunOutcome::Quiescent,
        "overload must drain, not wedge"
    );
    for f in flows {
        // Multi-destination flows reorder across destinations (different
        // path lengths) — per-pair ordering is covered in
        // `best_effort.rs`. Here the invariant is zero loss.
        assert_eq!(sim.flow(f).delivered, 500);
    }
}
