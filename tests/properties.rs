//! Property-based tests over the core data structures and whole-network
//! invariants.

use mango::core::{
    BeDest, BeHeader, Direction, Flit, GsBufferRef, Port, ProgWrite, RouterId, Steer, UpstreamRef,
    VcId,
};
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::{RunOutcome, SimDuration, SimRng};
use proptest::prelude::*;

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![
        Just(Direction::North),
        Just(Direction::East),
        Just(Direction::South),
        Just(Direction::West),
    ]
}

fn steer_target() -> impl Strategy<Value = Steer> {
    prop_oneof![
        (direction(), 0u8..8).prop_map(|(dir, vc)| Steer::GsBuffer { dir, vc: VcId(vc) }),
        (0u8..4).prop_map(|iface| Steer::LocalGs { iface }),
        Just(Steer::BeUnit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every packable steering target round-trips through the 5-bit wire
    /// format from every arrival port.
    #[test]
    fn steer_pack_unpack_roundtrip(target in steer_target(), from in direction(), local in any::<bool>()) {
        let arrival = if local { Port::Local } else { Port::Net(from) };
        if let Ok(code) = target.pack(arrival) {
            prop_assert!(code < 32);
            prop_assert_eq!(Steer::unpack(code, arrival), Ok(target));
        }
    }

    /// BE headers decode back to exactly the route they encode, hop by
    /// hop, and then deliver locally. Routes never reverse direction
    /// (a 180° turn encodes local delivery, so `from_route` rejects it);
    /// generate them as an initial direction plus turn choices.
    #[test]
    fn be_header_follows_its_route(
        first in direction(),
        turns in prop::collection::vec(0u8..3, 0..14),
    ) {
        let mut route = vec![first];
        for t in turns {
            let prev = *route.last().unwrap();
            // 0 = straight, 1 = left, 2 = right — never the opposite.
            let next = match t {
                0 => prev,
                1 => Direction::from_index((prev.index() + 3) % 4),
                _ => Direction::from_index((prev.index() + 1) % 4),
            };
            route.push(next);
        }
        let header = BeHeader::from_route(&route).unwrap();
        let mut h = header;
        let mut from = None;
        for &dir in &route {
            let (dest, next) = h.route(from);
            prop_assert_eq!(dest, BeDest::Net(dir));
            h = next;
            from = Some(dir.opposite());
        }
        let (dest, _) = h.route(from);
        prop_assert_eq!(dest, BeDest::Local);
    }
}

fn gs_buffer() -> impl Strategy<Value = GsBufferRef> {
    prop_oneof![
        (direction(), 0u8..8).prop_map(|(dir, vc)| GsBufferRef::Net { dir, vc: VcId(vc) }),
        (0u8..4).prop_map(|iface| GsBufferRef::Local { iface }),
    ]
}

fn upstream() -> impl Strategy<Value = UpstreamRef> {
    prop_oneof![
        (direction(), 0u8..8).prop_map(|(in_dir, wire)| UpstreamRef::Link {
            in_dir,
            wire: VcId(wire)
        }),
        (0u8..4).prop_map(|iface| UpstreamRef::Na { iface }),
    ]
}

fn prog_write() -> impl Strategy<Value = ProgWrite> {
    prop_oneof![
        (direction(), 0u8..8, steer_target()).prop_map(|(dir, vc, steer)| ProgWrite::SetSteer {
            dir,
            vc: VcId(vc),
            steer
        }),
        (direction(), 0u8..8).prop_map(|(dir, vc)| ProgWrite::ClearSteer { dir, vc: VcId(vc) }),
        (gs_buffer(), upstream())
            .prop_map(|(buffer, upstream)| ProgWrite::SetUnlock { buffer, upstream }),
        gs_buffer().prop_map(|buffer| ProgWrite::ClearUnlock { buffer }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any sequence of programming writes survives the 32-bit config-word
    /// encoding.
    #[test]
    fn prog_payload_roundtrip(writes in prop::collection::vec(prog_write(), 0..12)) {
        let words = mango::core::prog::encode_payload(&writes, None);
        let (decoded, ack) = mango::core::prog::decode_payload(&words).unwrap();
        prop_assert_eq!(decoded, writes);
        prop_assert_eq!(ack, None);
    }

    /// The deterministic RNG respects bounds and reproduces streams.
    #[test]
    fn rng_bounds_and_determinism(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..50 {
            let x = a.gen_range(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.gen_range(bound));
        }
    }
}

proptest! {
    // Whole-network properties are expensive: fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single GS connection on any mesh delivers every flit, in
    /// order, regardless of endpoints, rate and count.
    #[test]
    fn gs_delivery_is_lossless_and_ordered(
        w in 2u8..5,
        h in 2u8..5,
        sx in 0u8..4,
        sy in 0u8..4,
        dx in 0u8..4,
        dy in 0u8..4,
        period_ns in 2u64..40,
        count in 50u64..400,
        seed in any::<u64>(),
    ) {
        let (sx, sy) = (sx % w, sy % h);
        let (dx, dy) = (dx % w, dy % h);
        prop_assume!((sx, sy) != (dx, dy));
        let mut sim = NocSim::paper_mesh(w, h, seed);
        let conn = sim
            .open_connection(RouterId::new(sx, sy), RouterId::new(dx, dy))
            .unwrap();
        sim.wait_connections_settled().unwrap();
        let flow = sim.add_gs_source(
            conn,
            Pattern::cbr(SimDuration::from_ns(period_ns)),
            "prop",
            EmitWindow { limit: Some(count), ..Default::default() },
        );
        let outcome = sim.run_to_quiescence();
        prop_assert_eq!(outcome, RunOutcome::Quiescent);
        let s = sim.flow(flow);
        prop_assert_eq!(s.injected, count);
        prop_assert_eq!(s.delivered, count);
        prop_assert_eq!(s.sequence_errors, 0);
    }

    /// Random BE packet sets between random endpoint pairs always drain
    /// (XY deadlock freedom) with nothing lost.
    #[test]
    fn be_xy_traffic_always_drains(
        w in 2u8..5,
        h in 2u8..5,
        pairs in prop::collection::vec((0u8..16, 0u8..16, 1u64..6, 1usize..6), 1..6),
        seed in any::<u64>(),
    ) {
        let mut sim = NocSim::paper_mesh(w, h, seed);
        let n = w as u16 * h as u16;
        let mut flows = Vec::new();
        for (a, b, count, words) in pairs {
            let src_i = (a as u16 % n) as usize;
            let dst_i = (b as u16 % n) as usize;
            if src_i == dst_i {
                continue;
            }
            let src = sim.network().grid().id_at(src_i);
            let dst = sim.network().grid().id_at(dst_i);
            let flow = sim.add_be_source(
                src,
                vec![dst],
                words,
                Pattern::cbr(SimDuration::from_ns(30)),
                "prop-be",
                EmitWindow { limit: Some(count), ..Default::default() },
            );
            flows.push((flow, count));
        }
        let outcome = sim.run_to_quiescence();
        prop_assert_eq!(outcome, RunOutcome::Quiescent);
        for (flow, count) in flows {
            prop_assert_eq!(sim.flow(flow).delivered, count);
        }
    }

    /// Flit instrumentation survives arbitrary metadata.
    #[test]
    fn flit_meta_is_preserved(data in any::<u32>(), seq in any::<u64>(), flow in any::<u32>()) {
        let f = Flit::gs(data).with_meta(mango::sim::SimTime::from_ps(1), seq, flow);
        prop_assert_eq!(f.data, data);
        prop_assert_eq!(f.seq(), seq);
        prop_assert_eq!(f.flow(), flow);
    }
}

// ---------------------------------------------------------------------
// TDM baseline and OCP-layer properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random GT connection sets never double-book a slot, and every
    /// accepted connection's slots respect the wave rule.
    #[test]
    fn tdm_slot_allocation_is_conflict_free(
        requests in prop::collection::vec((0u8..4, 0u8..4, 0u8..4, 0u8..4, 1usize..4), 1..12),
    ) {
        use mango::baseline::{TdmConfig, TdmNetwork};
        use std::collections::HashMap;
        let grid = mango::net::Grid::new(4, 4);
        let mut net = TdmNetwork::new(grid.clone(), TdmConfig::aethereal());
        let mut accepted = Vec::new();
        for (sx, sy, dx, dy, slots) in requests {
            let src = RouterId::new(sx, sy);
            let dst = RouterId::new(dx, dy);
            if src == dst {
                continue;
            }
            if let Ok(id) = net.open_gt(src, dst, slots) {
                accepted.push(id);
            }
        }
        // Rebuild the global slot map from the connection records and
        // check exclusivity + the wave rule.
        let mut occupancy: HashMap<(RouterId, Direction, usize), mango::core::ConnectionId> =
            HashMap::new();
        let slots_per_frame = 8usize;
        for id in accepted {
            let conn = net.connection(id).clone();
            let path = mango::net::xy_path(&grid, conn.src, conn.dst).unwrap();
            for &start in &conn.slots {
                for (i, &dir) in conn.dirs.iter().enumerate() {
                    let slot = (start + i) % slots_per_frame;
                    let key = (path[i], dir, slot);
                    prop_assert!(
                        occupancy.insert(key, id).is_none(),
                        "slot double-booked at {key:?}"
                    );
                }
            }
        }
    }

    /// OCP messages survive encode/decode for arbitrary fields.
    #[test]
    fn ocp_roundtrip(
        tag in any::<u16>(),
        x in 0u8..16,
        y in 0u8..16,
        addr in any::<u32>(),
        data in prop::collection::vec(any::<u32>(), 0..8),
        burst in 1u16..16,
    ) {
        use mango::net::OcpMessage;
        let requester = RouterId::new(x, y);
        for msg in [
            OcpMessage::ReadReq { tag, requester, addr, burst },
            OcpMessage::WriteReq { tag, requester, addr, data: data.clone() },
            OcpMessage::ReadResp { tag, data },
            OcpMessage::WriteResp { tag },
        ] {
            prop_assert_eq!(OcpMessage::decode(&msg.encode()), Ok(msg));
        }
    }

    /// Area model: monotone in every parameter, always finite/positive.
    #[test]
    fn area_model_is_monotone_and_finite(
        ports in 2usize..8,
        vcs in 2usize..32,
        bits in 8usize..128,
        depth in 1usize..8,
    ) {
        use mango::hw::area::{AreaModel, RouterParams};
        let model = AreaModel::cmos_120nm();
        let p = RouterParams {
            ports,
            gs_vcs: vcs,
            flit_data_bits: bits,
            buffer_depth: depth,
            local_gs_ifaces: 4,
        };
        let base = model.breakdown(&p).total_um2();
        prop_assert!(base.is_finite() && base > 0.0);
        let mut bigger = p.clone();
        bigger.gs_vcs += 1;
        prop_assert!(model.breakdown(&bigger).total_um2() > base);
        let mut bigger = p.clone();
        bigger.flit_data_bits += 8;
        prop_assert!(model.breakdown(&bigger).total_um2() > base);
        let mut bigger = p;
        bigger.buffer_depth += 1;
        prop_assert!(model.breakdown(&bigger).total_um2() > base);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue is a stable priority queue: pops are globally
    /// time-ordered and FIFO within equal timestamps, for arbitrary
    /// push/pop interleavings (checked against a reference model).
    ///
    /// Times mix three scales so the calendar queue's tiers all get
    /// exercised: a tie-heavy band (same-bucket FIFO order), a band
    /// around the wheel span (bucket wrap), and a far band (overflow
    /// promotion) — plus pushes *below* earlier pops (the past tier).
    #[test]
    fn event_queue_matches_reference_model(
        ops in prop::collection::vec(
            (any::<bool>(), prop_oneof![0u64..50, 0u64..100_000, 0u64..10_000_000]),
            1..200,
        ),
    ) {
        use mango::sim::{EventQueue, SimTime};
        let mut q = EventQueue::new();
        let mut model: Vec<(u64, usize)> = Vec::new(); // (time, seq)
        let mut seq = 0usize;
        for (push, t) in ops {
            if push || model.is_empty() {
                q.push(SimTime::from_ps(t), seq);
                model.push((t, seq));
                seq += 1;
            } else {
                let (qt, qv) = q.pop().expect("model non-empty");
                // Reference: earliest time, then earliest insertion.
                let best = model
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(mt, ms))| (mt, ms))
                    .map(|(i, _)| i)
                    .expect("non-empty");
                let (mt, ms) = model.remove(best);
                prop_assert_eq!(qt, SimTime::from_ps(mt));
                prop_assert_eq!(qv, ms);
            }
        }
        // Drain: remaining pops come out fully sorted.
        let mut last = (0u64, 0usize);
        while let Some((t, v)) = q.pop() {
            let cur = (t.as_ps(), v);
            prop_assert!(cur >= last, "out of order: {last:?} then {cur:?}");
            last = cur;
        }
    }
}

fn arbiter_kind() -> impl Strategy<Value = mango::core::ArbiterKind> {
    use mango::core::ArbiterKind;
    prop_oneof![
        Just(ArbiterKind::FairShare),
        Just(ArbiterKind::StaticPriority),
        (1u32..6).prop_map(|age_bound| ArbiterKind::Alg { age_bound }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The enum-dispatched `ArbiterImpl` on the router's hot path must be
    /// decision-for-decision identical to the boxed `dyn LinkArbiter`
    /// reference it replaced, for every policy, across stateful random
    /// ready-mask sequences (round-robin pointers and ALG ages must track
    /// exactly — a single divergent grant would desynchronize the two).
    #[test]
    fn enum_arbiter_matches_boxed_reference(
        kind in arbiter_kind(),
        gs_vcs in 1usize..8,
        masks in prop::collection::vec(1u16..256, 1..200),
    ) {
        use mango::core::{ArbiterImpl, LinkArbiter};
        let mut enum_arb = ArbiterImpl::new(kind, gs_vcs);
        let mut boxed: Box<dyn LinkArbiter> = kind.build(gs_vcs);
        for mask in masks {
            // Restrict to this link's slots (bits 0..=gs_vcs); skip draws
            // that leave no requester ready.
            let mask = u128::from(mask) & ((1u128 << (gs_vcs + 1)) - 1);
            if mask == 0 {
                continue;
            }
            prop_assert_eq!(
                enum_arb.select_mask(mask, gs_vcs),
                boxed.select_mask(mask, gs_vcs)
            );
        }
    }

    /// Every legal wheel geometry must pop an adversarial schedule in
    /// exactly the same `(time, seq)` order as the default geometry —
    /// wrap-around times, overflow-tier promotions and dense same-bucket
    /// clusters included. (This is the contract that lets the scenario
    /// heuristic pick geometry freely without touching repro outputs.)
    #[test]
    fn wheel_geometry_never_changes_pop_order(
        buckets_log2 in 6u32..14,
        width_log2 in 0u32..10,
        ops in prop::collection::vec(
            (any::<bool>(), prop_oneof![
                0u64..8,            // same/adjacent-bucket ties (dense buckets)
                0u64..100_000,      // around and beyond small spans (wrap)
                0u64..50_000_000,   // far future (overflow tier)
            ]),
            1..300,
        ),
    ) {
        use mango::sim::{EventQueue, SimTime, WheelGeometry};
        let geometry = WheelGeometry { num_buckets: 1 << buckets_log2, width_log2 };
        let mut q = EventQueue::with_geometry(geometry);
        let mut reference = EventQueue::new();
        let mut now = 0u64;
        for (push, dt) in ops {
            if push || q.is_empty() {
                // Monotone kernel-like times keep the schedule legal for
                // any epoch position while still straddling span wraps.
                let t = SimTime::from_ps(now + dt);
                q.push(t, now);
                reference.push(t, now);
            } else {
                let got = q.pop();
                let want = reference.pop();
                prop_assert_eq!(got, want);
                now = got.expect("queue non-empty").0.as_ps();
            }
            prop_assert_eq!(q.peek_time(), reference.peek_time());
        }
        loop {
            let got = q.pop();
            prop_assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Topology properties: mesh, torus, chiplet
// ---------------------------------------------------------------------

fn topology_spec() -> impl Strategy<Value = mango::net::TopologySpec> {
    use mango::net::TopologySpec;
    prop_oneof![
        (1u8..7, 1u8..7).prop_map(|(w, h)| TopologySpec::mesh(w, h)),
        (2u8..8, 2u8..8).prop_map(|(w, h)| TopologySpec::torus(w, h)),
        (1u8..4, 1u8..4, 1u8..5, 1u8..5)
            .prop_map(|(cx, cy, nw, nh)| TopologySpec::chiplet(cx, cy, nw, nh)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stepping across any link (mesh edge, torus wrap, D2D seam) and
    /// stepping back along the opposite direction lands on the origin:
    /// `neighbor` is involutive on every topology. (BFS detours and
    /// spoofed VC feedback both rely on reverse links existing.)
    #[test]
    fn neighbor_is_involutive_on_every_topology(
        spec in topology_spec(),
        dir in direction(),
    ) {
        let grid = mango::net::Grid::from_spec(&spec);
        for id in grid.ids() {
            if let Some(n) = grid.neighbor(id, dir) {
                prop_assert!(grid.contains(n), "{spec}: {id}->{dir} left the grid");
                prop_assert_eq!(grid.neighbor(n, dir.opposite()), Some(id));
            }
        }
    }

    /// Generated XY routes stay on the topology hop by hop and end at
    /// the destination, for arbitrary specs and endpoint pairs.
    #[test]
    fn xy_routes_stay_in_topology_and_reach_dst(
        spec in topology_spec(),
        src_i in 0usize..256,
        dst_i in 0usize..256,
    ) {
        let grid = mango::net::Grid::from_spec(&spec);
        let src = grid.id_at(src_i % grid.len());
        let dst = grid.id_at(dst_i % grid.len());
        prop_assume!(src != dst);
        let route = mango::net::xy_route(&grid, src, dst).unwrap();
        let mut cur = src;
        for &dir in &route {
            cur = match grid.neighbor(cur, dir) {
                Some(n) => n,
                None => return Err(TestCaseError::fail(format!(
                    "{spec}: route {src}->{dst} leaves the grid at {cur}->{dir}"
                ))),
            };
        }
        prop_assert_eq!(cur, dst);
    }

    /// Torus XY routing takes the shorter way around each ring: never
    /// more than ⌈k/2⌉ hops per axis on a k-ary ring.
    #[test]
    fn torus_routes_at_most_half_the_ring_per_axis(
        w in 2u8..9,
        h in 2u8..9,
        src_i in 0usize..256,
        dst_i in 0usize..256,
    ) {
        let spec = mango::net::TopologySpec::torus(w, h);
        let grid = mango::net::Grid::from_spec(&spec);
        let src = grid.id_at(src_i % grid.len());
        let dst = grid.id_at(dst_i % grid.len());
        prop_assume!(src != dst);
        let route = mango::net::xy_route(&grid, src, dst).unwrap();
        let x_hops = route
            .iter()
            .filter(|d| matches!(d, Direction::East | Direction::West))
            .count();
        let y_hops = route.len() - x_hops;
        prop_assert!(
            x_hops <= (w as usize).div_ceil(2),
            "{spec}: {x_hops} x-hops on a {w}-ring"
        );
        prop_assert!(
            y_hops <= (h as usize).div_ceil(2),
            "{spec}: {y_hops} y-hops on a {h}-ring"
        );
    }

    /// Topology names round-trip through the parser for every
    /// generatable spec (the sweep CLI's `--topology` contract).
    #[test]
    fn topology_names_round_trip(spec in topology_spec()) {
        let name = spec.name();
        prop_assert_eq!(mango::net::TopologySpec::parse(&name), Some(spec));
    }
}
