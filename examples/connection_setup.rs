//! Connection setup walkthrough: watch the programming interface at work.
//!
//! Opening a GS connection sends BE configuration packets (marked with the
//! spare header bit) to every router on the path; each router writes its
//! connection table — steering bits for the *next* hop, unlock-wire
//! mapping for the *previous* hop, the two places the paper stores setup
//! state — and returns an acknowledgment packet. This example traces the
//! lifecycle: Opening → Open → traffic → Closing → Closed, and shows the
//! reserved VCs being recycled.
//!
//! Run with: `cargo run --release -p mango --example connection_setup`

use mango::core::RouterId;
use mango::net::{ConnState, EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

fn main() {
    let mut sim = NocSim::paper_mesh(3, 3, 99);
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(2, 1);

    println!("== opening {} -> {} ==", src, dst);
    let conn = sim.open_connection(src, dst).expect("VCs available");
    println!(
        "state after open(): {:?}",
        sim.connection_state(conn).unwrap()
    );
    assert_eq!(sim.connection_state(conn), Some(ConnState::Opening));

    sim.wait_connections_settled()
        .expect("programming completes");
    println!(
        "state after programming settled: {:?} (t = {})",
        sim.connection_state(conn).unwrap(),
        sim.now()
    );

    let record = sim.network().connections().get(conn).unwrap().clone();
    println!(
        "path: {} links {:?}, reserved VCs {:?}, NA tx iface {}, dst iface {}",
        record.hops(),
        record.dirs,
        record.vcs,
        record.tx_iface,
        record.rx_iface
    );

    // Inspect the programmed tables along the path.
    println!("\nper-router programming state:");
    for node in sim.network().nodes() {
        let r = &node.router;
        let s = r.stats();
        if s.prog_packets > 0 || r.table().steer_entries() > 0 || r.table().unlock_entries() > 0 {
            println!(
                "  router {}: {} config packets, {} table writes, {} steer + {} unlock entries",
                r.id(),
                s.prog_packets,
                s.prog_writes,
                r.table().steer_entries(),
                r.table().unlock_entries()
            );
        }
    }

    // Use the connection.
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(10)),
        "payload",
        EmitWindow {
            limit: Some(1000),
            ..Default::default()
        },
    );
    sim.run_to_quiescence();
    println!(
        "\nstreamed {} flits, mean latency {}",
        sim.flow(flow).delivered,
        sim.flow(flow).latency.mean().unwrap()
    );

    // Tear down and reopen: the same VCs come back.
    println!("\n== closing ==");
    sim.close_connection(conn).expect("open connection");
    println!(
        "state after close(): {:?}",
        sim.connection_state(conn).unwrap()
    );
    sim.wait_connections_settled().expect("teardown completes");
    println!(
        "state after teardown settled: {:?}",
        sim.connection_state(conn).unwrap()
    );
    assert_eq!(sim.connection_state(conn), Some(ConnState::Closed));

    let conn2 = sim.open_connection(src, dst).expect("resources recycled");
    sim.wait_connections_settled()
        .expect("programming completes");
    let record2 = sim.network().connections().get(conn2).unwrap().clone();
    println!(
        "\nreopened as {} with VCs {:?} (recycled: {})",
        conn2,
        record2.vcs,
        record2.vcs == record.vcs
    );
    assert_eq!(record2.vcs, record.vcs, "freed VCs are reused first-fit");
}
