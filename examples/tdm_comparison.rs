//! MANGO vs ÆTHEREAL-style TDM: the architectural comparison of Sec. 6,
//! run as an experiment.
//!
//! Both networks reserve a corner-to-corner guaranteed connection sized to
//! ~1/8 of link bandwidth, and we compare what each architecture delivers:
//! effective payload bandwidth (TDM pays per-packet header overhead;
//! MANGO GS streams are header-less) and worst-case latency (TDM couples
//! latency to the slot frame; MANGO's wait is bounded by the fair-share
//! round).
//!
//! Run with: `cargo run --release -p mango --example tdm_comparison`

use mango::baseline::{AetherealReference, TdmConfig, TdmNetwork};
use mango::core::RouterId;
use mango::hw::{AreaModel, Corner, RouterParams, TimingModel};
use mango::net::{EmitWindow, Grid, NocSim, Pattern};
use mango::sim::{SimDuration, SimTime};

fn main() {
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(3, 3);

    // --- MANGO: GS connection at its fair-share floor. ---
    let mut sim = NocSim::paper_mesh(4, 4, 5);
    let conn = sim.open_connection(src, dst).expect("VCs available");
    sim.wait_connections_settled()
        .expect("programming completes");
    sim.run_for(SimDuration::from_us(5));
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ps(10_070)), // ≈ the 1/8 floor
        "mango-gs",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(200));
    let mango_bw = sim.flow_throughput_m(flow);
    let mango_worst = sim.flow(flow).latency.max().unwrap();

    // --- TDM: 1 slot of 8 on the same path. ---
    let mut tdm = TdmNetwork::new(Grid::new(4, 4), TdmConfig::aethereal());
    let gt = tdm.open_gt(src, dst, 1).expect("slots available");
    let tdm_raw = tdm.gt_raw_bandwidth_fps(gt) / 1e6;
    let tdm_payload = tdm.gt_payload_bandwidth_fps(gt) / 1e6;
    let tdm_worst = tdm.gt_worst_latency(gt);
    // Sample actual delivery latencies across a frame of arrival phases.
    let mut tdm_lat_sum = 0.0;
    let samples = 64;
    for i in 0..samples {
        let ready = SimTime::from_ps(i * 257); // spread over the frame
        let delivered = tdm.gt_delivery(gt, ready);
        tdm_lat_sum += delivered.since(ready).as_ns_f64();
    }
    let tdm_mean = tdm_lat_sum / samples as f64;

    // --- Hardware numbers. ---
    let area = AreaModel::cmos_120nm().breakdown(&RouterParams::paper());
    let timing = TimingModel::cmos_120nm();

    println!("MANGO vs AEthereal-style TDM — guaranteed service on a 6-hop path\n");
    println!("{:<36} {:>14} {:>14}", "", "MANGO", "TDM (8 slots)");
    println!("{}", "-".repeat(66));
    println!(
        "{:<36} {:>14.1} {:>14.1}",
        "reserved bandwidth [Mflit/s]",
        sim.link_capacity_m() / 8.0,
        tdm_raw
    );
    println!(
        "{:<36} {:>14.1} {:>14.1}",
        "payload bandwidth [Mflit/s]", mango_bw, tdm_payload
    );
    println!(
        "{:<36} {:>14.1} {:>14.1}",
        "mean latency [ns]",
        sim.flow(flow).latency.mean().unwrap().as_ns_f64(),
        tdm_mean
    );
    println!(
        "{:<36} {:>14.1} {:>14.1}",
        "worst observed/bound latency [ns]",
        mango_worst.as_ns_f64(),
        tdm_worst.as_ns_f64()
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "independent buffering per connection", "yes", "no"
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "end-to-end flow control", "inherent", "credits"
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "connection routing state", "in-router", "in-header"
    );
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "router area [mm2]",
        area.total_mm2(),
        AetherealReference::AREA_MM2
    );
    println!(
        "{:<36} {:>14.0} {:>14.0}",
        "port speed [MHz, worst-case]",
        timing.port_speed_mhz(Corner::WorstCase),
        AetherealReference::PORT_SPEED_MHZ
    );

    // The headline deltas the paper claims.
    assert!(
        mango_bw > tdm_payload,
        "header-less GS streams beat TDM payload bandwidth at equal reservation"
    );
    println!(
        "\nMANGO payload advantage at equal reservation: {:+.1}%",
        (mango_bw / tdm_payload - 1.0) * 100.0
    );
}
