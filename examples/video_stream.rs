//! A QoS scenario from the paper's motivation: a video stream needs hard
//! bandwidth and bounded jitter while bursty best-effort traffic hammers
//! the same links.
//!
//! The video connection reserves one GS VC per hop. BE sources at every
//! node then flood the mesh with uniform-random packet traffic. The GS
//! stream's throughput and latency stay flat no matter how hard the BE
//! side pushes — the connection is logically independent of other traffic
//! (Sec. 3) — while BE latency degrades with load.
//!
//! Run with: `cargo run --release -p mango --example video_stream`

use mango::core::RouterId;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

fn run_at_be_load(be_period: Option<SimDuration>) -> (f64, f64, f64) {
    let mut sim = NocSim::paper_mesh(4, 4, 7);

    // The "video port" streams corner to corner: 720p-ish 4-byte pixels
    // at ~60 Mflit/s, within the 1/8 fair-share floor (99 Mflit/s).
    let conn = sim
        .open_connection(RouterId::new(0, 0), RouterId::new(3, 3))
        .expect("VCs available");
    sim.wait_connections_settled()
        .expect("programming completes");

    // Background BE: every node sprays packets at random nodes.
    if let Some(period) = be_period {
        let all: Vec<RouterId> = sim.network().grid().ids().collect();
        for node in all.clone() {
            let dests: Vec<RouterId> = all.iter().copied().filter(|d| *d != node).collect();
            sim.add_be_source(
                node,
                dests,
                4,
                Pattern::poisson(period),
                format!("be-{node}"),
                EmitWindow::default(),
            );
        }
    }

    // Warmup, then measure.
    sim.run_for(SimDuration::from_us(20));
    sim.begin_measurement();
    let video = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ps(16_667)), // 60 Mflit/s
        "video",
        EmitWindow::default(),
    );
    sim.run_for(SimDuration::from_us(200));

    let stats = sim.flow(video);
    let throughput = sim.flow_throughput_m(video);
    let mean_ns = stats.latency.mean().map_or(0.0, |d| d.as_ns_f64());
    let jitter_ns = stats.latency.jitter().map_or(0.0, |d| d.as_ns_f64());
    (throughput, mean_ns, jitter_ns)
}

fn main() {
    println!("video stream (60 Mflit/s GS connection) vs BE background load\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "BE background", "video Mf/s", "mean ns", "jitter ns"
    );
    let cases: Vec<(&str, Option<SimDuration>)> = vec![
        ("none", None),
        ("light (1 pkt/us/node)", Some(SimDuration::from_us(1))),
        ("heavy (1 pkt/200ns/node)", Some(SimDuration::from_ns(200))),
        (
            "saturating (1 pkt/60ns/node)",
            Some(SimDuration::from_ns(60)),
        ),
    ];
    let mut results = Vec::new();
    for (name, period) in cases {
        let (tput, mean, jitter) = run_at_be_load(period);
        println!("{name:<28} {tput:>12.2} {mean:>12.2} {jitter:>12.2}");
        results.push((tput, mean, jitter));
    }
    let base = results[0];
    let worst = results.last().unwrap();
    println!(
        "\nGS independence: throughput moved {:+.2}%, mean latency {:+.2}% under saturating BE",
        (worst.0 - base.0) / base.0 * 100.0,
        (worst.1 - base.1) / base.1 * 100.0,
    );
    assert!(
        (worst.0 - base.0).abs() / base.0 < 0.02,
        "video throughput must be unaffected by BE load"
    );
}
