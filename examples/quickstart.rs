//! Quickstart: open a GS connection across a mesh, stream flits over it,
//! and print the latency/throughput the connection achieved.
//!
//! Run with: `cargo run --release -p mango --example quickstart`

use mango::core::RouterId;
use mango::net::{EmitWindow, NocSim, Pattern};
use mango::sim::SimDuration;

fn main() {
    // A 4×4 mesh of the paper's routers (8 VCs per link: 7 GS + 1 BE,
    // fair-share arbitration, typical 0.12 µm timing).
    let mut sim = NocSim::paper_mesh(4, 4, 0xC0FFEE);
    println!(
        "link capacity: {:.1} Mflit/s per port (paper: 795 MHz typical)",
        sim.link_capacity_m()
    );

    // Open a connection from corner to corner. The source router is
    // programmed through its local port; the six other routers on the XY
    // path receive BE configuration packets and acknowledge them.
    let src = RouterId::new(0, 0);
    let dst = RouterId::new(3, 3);
    let conn = sim.open_connection(src, dst).expect("VCs available");
    sim.wait_connections_settled()
        .expect("programming completes");
    let record = sim.network().connections().get(conn).unwrap().clone();
    println!(
        "connection {} open: {} -> {} over {} links, VCs {:?}",
        conn,
        src,
        dst,
        record.hops(),
        record.vcs
    );

    // Stream 10k flits at 50 Mflit/s — half of this connection's
    // fair-share floor (1/8 of the link).
    sim.begin_measurement();
    let flow = sim.add_gs_source(
        conn,
        Pattern::cbr(SimDuration::from_ns(20)),
        "quickstart",
        EmitWindow {
            limit: Some(10_000),
            ..Default::default()
        },
    );
    sim.run_to_quiescence();

    let stats = sim.flow(flow);
    println!(
        "delivered {}/{} flits, {} sequence errors",
        stats.delivered, stats.injected, stats.sequence_errors
    );
    println!(
        "latency: min {} mean {} p99 {} max {}",
        stats.latency.min().unwrap(),
        stats.latency.mean().unwrap(),
        stats.latency.quantile(0.99).unwrap(),
        stats.latency.max().unwrap()
    );
    println!(
        "throughput: {:.1} Mflit/s over {:.1} us",
        sim.flow_throughput_m(flow),
        sim.measured_window().as_ns_f64() / 1000.0
    );
    assert_eq!(stats.delivered, 10_000, "GS delivery is lossless");
    assert_eq!(stats.sequence_errors, 0, "GS delivery is in-order");
}
