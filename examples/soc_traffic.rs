//! A heterogeneous SoC scenario (the paper's Fig. 1 motivation): CPU, DSP,
//! video-out and memory-controller cores on one clockless mesh, mixing
//! OCP-lite request/response traffic over BE with hard-guaranteed GS
//! streams.
//!
//! * The **memory controller** at (2,2) is an OCP slave: it answers read
//!   and write bursts arriving as BE packets.
//! * The **CPU** at (0,0) issues OCP writes then reads and checks the data
//!   round-trips through the mesh.
//! * The **DSP → video-out** path (0,2) → (2,0) holds a GS connection
//!   carrying a constant 80 Mflit/s sample stream while all the OCP
//!   traffic flies around it.
//!
//! Run with: `cargo run --release -p mango --example soc_traffic`

use mango::core::RouterId;
use mango::net::{EmitWindow, NocSim, OcpMessage, OcpSlave, Pattern};
use mango::sim::SimDuration;

fn main() {
    let mut sim = NocSim::paper_mesh(3, 3, 2024);
    let cpu = RouterId::new(0, 0);
    let dsp = RouterId::new(0, 2);
    let video = RouterId::new(2, 0);
    let mem = RouterId::new(2, 2);

    // Attach the memory-controller model to the NA at (2,2).
    let resp_flow = sim.network_mut().stats_mut().register_flow("ocp-responses");
    let mut slave = OcpSlave::new();
    slave.response_flow = Some(resp_flow);
    sim.network_mut().set_app(mem, Box::new(slave));

    // DSP → video GS stream.
    let stream = sim.open_connection(dsp, video).expect("VCs available");
    sim.wait_connections_settled()
        .expect("programming completes");
    sim.begin_measurement();
    let stream_flow = sim.add_gs_source(
        stream,
        Pattern::cbr(SimDuration::from_ps(12_500)), // 80 Mflit/s
        "dsp-video",
        EmitWindow::default(),
    );

    // CPU issues OCP writes: 64 bursts of 4 words.
    let req_flow = sim.network_mut().stats_mut().register_flow("ocp-requests");
    for i in 0..64u32 {
        let write = OcpMessage::WriteReq {
            tag: i as u16,
            requester: cpu,
            addr: 0x1000 + i * 4,
            data: vec![i, i + 1, i + 2, i + 3],
        };
        sim.send_be(cpu, mem, &write.encode(), Some(req_flow));
    }
    sim.run_for(SimDuration::from_us(50));

    // ...then reads everything back.
    for i in 0..64u32 {
        let read = OcpMessage::ReadReq {
            tag: 0x100 + i as u16,
            requester: cpu,
            addr: 0x1000 + i * 4,
            burst: 4,
        };
        sim.send_be(cpu, mem, &read.encode(), Some(req_flow));
    }
    sim.run_for(SimDuration::from_us(100));

    // Report.
    let req = sim.flow(req_flow);
    let resp = sim.flow(resp_flow);
    let stream_stats = sim.flow(stream_flow);
    println!("SoC scenario on a 3x3 clockless mesh\n");
    println!(
        "OCP requests:  {:>4} sent, {:>4} delivered to the memory controller",
        req.injected, req.delivered
    );
    println!(
        "OCP responses: {:>4} sent, {:>4} delivered back to the CPU",
        resp.injected, resp.delivered
    );
    println!(
        "request one-way latency: mean {} max {}",
        req.latency.mean().unwrap(),
        req.latency.max().unwrap()
    );
    println!(
        "response one-way latency: mean {} max {}",
        resp.latency.mean().unwrap(),
        resp.latency.max().unwrap()
    );
    println!(
        "\nDSP->video GS stream: {:.1} Mflit/s, mean latency {}, jitter {}",
        sim.flow_throughput_m(stream_flow),
        stream_stats.latency.mean().unwrap(),
        stream_stats.latency.jitter().unwrap()
    );

    println!("\nper-flow summary:\n{}", sim.flow_summary());
    assert_eq!(req.delivered, 128, "all OCP requests arrive");
    assert_eq!(resp.delivered, 128, "every request gets a response");
    assert_eq!(stream_stats.sequence_errors, 0);
    // The stream kept its rate despite the OCP chatter.
    let rate = sim.flow_throughput_m(stream_flow);
    assert!(
        (rate - 80.0).abs() < 2.0,
        "GS stream must hold 80 Mflit/s, got {rate:.1}"
    );
    println!("\nall checks passed");
}
